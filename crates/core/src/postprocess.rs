//! Cross-date redundancy post-processing (Algorithm 1, lines 15–21).
//!
//! Daily summarization is local, so two days can surface near-identical
//! sentences (e.g. the same background recap). The post-processing pass
//! assembles the timeline round-robin: each iteration pops the best
//! remaining sentence of every day, discards any whose maximum cosine
//! similarity with *all already-selected sentences across the whole
//! timeline* exceeds the threshold (paper: 0.5), and admits the rest until
//! every day holds `n` sentences or its candidates are exhausted.

use tl_nlp::SparseVector;
use tl_temporal::Date;

/// One day's ranked candidates: sentence indices, best first.
#[derive(Debug, Clone)]
pub struct DayCandidates {
    /// The selected date.
    pub date: Date,
    /// Candidate sentence indices into the shared sentence array, in
    /// descending TextRank order.
    pub ranked: Vec<usize>,
}

/// Assemble the final timeline from per-day rankings.
///
/// `vectors[i]` is the similarity vector of sentence `i` (TF-IDF unit
/// vectors in the full pipeline). With `post_process` off, each day simply
/// takes its top `n` candidates (the `WILSON w/o Post` ablation) — except
/// that exact duplicates of already-selected sentences (cosine ≈ 1 and the
/// same index) are still unique per day by construction.
///
/// Returns `(date, selected indices)` per day, dates in input order.
pub fn assemble_timeline(
    days: &[DayCandidates],
    vectors: &[SparseVector],
    n: usize,
    sim_threshold: f64,
    post_process: bool,
) -> Vec<(Date, Vec<usize>)> {
    assemble_timeline_with(days, n, sim_threshold, post_process, |i| vectors[i].clone())
}

/// [`assemble_timeline`] with similarity vectors produced on demand.
///
/// The round-robin pass examines each candidate index at most once (the
/// cursor only advances), so `vector_of` is called exactly once per
/// examined candidate; vectors of admitted sentences are kept for the
/// global similarity check. Callers with an expensive vector build (the
/// incremental path, which would otherwise vectorize every candidate of
/// every selected day each refresh) pay only for what the pass inspects —
/// the comparisons run in the same order on the same values, so the
/// selection is identical to the eager variant's.
pub fn assemble_timeline_with(
    days: &[DayCandidates],
    n: usize,
    sim_threshold: f64,
    post_process: bool,
    mut vector_of: impl FnMut(usize) -> SparseVector,
) -> Vec<(Date, Vec<usize>)> {
    assert!(n > 0, "n must be positive");
    if !post_process {
        return days
            .iter()
            .map(|d| (d.date, d.ranked.iter().copied().take(n).collect()))
            .collect();
    }

    let t = days.len();
    let mut selected: Vec<Vec<usize>> = vec![Vec::new(); t];
    let mut cursor: Vec<usize> = vec![0; t];
    // Vectors of all selected sentences, in selection order, for the global
    // similarity check (line 19 checks against S = ∪ S_i).
    let mut selected_vectors: Vec<SparseVector> = Vec::new();

    loop {
        let mut progressed = false;
        // Line 17–18: take (and remove) the current top sentence per day.
        for i in 0..t {
            if selected[i].len() >= n {
                continue;
            }
            let Some(&cand) = days[i].ranked.get(cursor[i]) else {
                continue;
            };
            cursor[i] += 1;
            progressed = true;
            // Line 19: reject candidates too similar to anything selected.
            let vcand = vector_of(cand);
            let too_similar = selected_vectors
                .iter()
                .any(|vs| vcand.cosine(vs) > sim_threshold);
            if too_similar {
                continue;
            }
            // Line 20: admit.
            selected[i].push(cand);
            selected_vectors.push(vcand);
        }
        // Line 21: stop when all days are full or all heaps are dry.
        let all_done = (0..t).all(|i| selected[i].len() >= n || cursor[i] >= days[i].ranked.len());
        if all_done || !progressed {
            break;
        }
    }

    days.iter()
        .zip(selected)
        .map(|(d, sel)| (d.date, sel))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(n: i32) -> Date {
        Date::from_days(n)
    }

    fn v(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec())
    }

    /// Orthogonal unit vectors: nothing is similar to anything.
    fn orthogonal(n: usize) -> Vec<SparseVector> {
        (0..n).map(|i| v(&[(i as u32, 1.0)])).collect()
    }

    #[test]
    fn no_post_takes_top_n() {
        let days = vec![
            DayCandidates {
                date: d(0),
                ranked: vec![0, 1, 2],
            },
            DayCandidates {
                date: d(1),
                ranked: vec![3, 4],
            },
        ];
        let vectors = orthogonal(5);
        let tl = assemble_timeline(&days, &vectors, 2, 0.5, false);
        assert_eq!(tl[0].1, vec![0, 1]);
        assert_eq!(tl[1].1, vec![3, 4]);
    }

    #[test]
    fn post_with_orthogonal_vectors_equals_top_n() {
        let days = vec![
            DayCandidates {
                date: d(0),
                ranked: vec![0, 1],
            },
            DayCandidates {
                date: d(1),
                ranked: vec![2, 3],
            },
        ];
        let vectors = orthogonal(4);
        let tl = assemble_timeline(&days, &vectors, 2, 0.5, true);
        assert_eq!(tl[0].1, vec![0, 1]);
        assert_eq!(tl[1].1, vec![2, 3]);
    }

    #[test]
    fn duplicate_across_days_removed() {
        // Sentence 2 is identical to sentence 0 (same vector).
        let days = vec![
            DayCandidates {
                date: d(0),
                ranked: vec![0],
            },
            DayCandidates {
                date: d(1),
                ranked: vec![2, 3],
            },
        ];
        let vectors = vec![
            v(&[(0, 1.0)]),
            v(&[(1, 1.0)]),
            v(&[(0, 1.0)]), // duplicate of 0
            v(&[(2, 1.0)]),
        ];
        let tl = assemble_timeline(&days, &vectors, 1, 0.5, true);
        assert_eq!(tl[0].1, vec![0]);
        // Day 1's top candidate was rejected; the next one is admitted.
        assert_eq!(tl[1].1, vec![3]);
    }

    #[test]
    fn rejected_candidates_are_discarded_not_requeued() {
        // Day 1 has only a duplicate: it ends up empty.
        let days = vec![
            DayCandidates {
                date: d(0),
                ranked: vec![0],
            },
            DayCandidates {
                date: d(1),
                ranked: vec![1],
            },
        ];
        let vectors = vec![v(&[(0, 1.0)]), v(&[(0, 1.0)])];
        let tl = assemble_timeline(&days, &vectors, 1, 0.5, true);
        assert_eq!(tl[0].1, vec![0]);
        assert!(tl[1].1.is_empty());
    }

    #[test]
    fn threshold_boundary_is_strict() {
        // cosine exactly == threshold is allowed (paper: "smaller than a
        // threshold", our check rejects only > threshold).
        let a = v(&[(0, 1.0)]);
        let b = v(&[(0, 1.0), (1, 1.0)]); // cosine = 1/√2 ≈ 0.707
        let days = vec![
            DayCandidates {
                date: d(0),
                ranked: vec![0],
            },
            DayCandidates {
                date: d(1),
                ranked: vec![1],
            },
        ];
        let cos = a.cosine(&b);
        let tl = assemble_timeline(&days, &[a.clone(), b.clone()], 1, cos, true);
        assert_eq!(tl[1].1, vec![1], "equal-to-threshold must pass");
        let tl = assemble_timeline(&days, &[a, b], 1, cos - 1e-9, true);
        assert!(tl[1].1.is_empty(), "above threshold must be rejected");
    }

    #[test]
    fn round_robin_alternates_days() {
        // Day 0's second candidate duplicates day 1's first. Round-robin
        // means day 1's first is selected *before* day 0's second is
        // examined, so the duplicate is caught.
        let days = vec![
            DayCandidates {
                date: d(0),
                ranked: vec![0, 1],
            },
            DayCandidates {
                date: d(1),
                ranked: vec![2],
            },
        ];
        let vectors = vec![
            v(&[(0, 1.0)]),
            v(&[(5, 1.0)]), // duplicate of sentence 2
            v(&[(5, 1.0)]),
        ];
        let tl = assemble_timeline(&days, &vectors, 2, 0.5, true);
        assert_eq!(tl[0].1, vec![0], "day 0 second candidate rejected");
        assert_eq!(tl[1].1, vec![2]);
    }

    #[test]
    fn respects_n_cap() {
        let days = vec![DayCandidates {
            date: d(0),
            ranked: (0..10).collect(),
        }];
        let vectors = orthogonal(10);
        let tl = assemble_timeline(&days, &vectors, 3, 0.5, true);
        assert_eq!(tl[0].1.len(), 3);
    }

    #[test]
    fn empty_days_and_candidates() {
        let tl = assemble_timeline(&[], &[], 2, 0.5, true);
        assert!(tl.is_empty());
        let days = vec![DayCandidates {
            date: d(0),
            ranked: vec![],
        }];
        let tl = assemble_timeline(&days, &[], 2, 0.5, true);
        assert_eq!(tl.len(), 1);
        assert!(tl[0].1.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_n_rejected() {
        assemble_timeline(&[], &[], 0, 0.5, true);
    }
}
