//! Automatic date compression (§3.2.3): predict the number of timeline
//! dates from the corpus instead of requiring the user to preset `T`.
//!
//! Procedure from the paper: generate a daily summary for every candidate
//! date, encode the summaries into embedding vectors (BERT in the paper,
//! feature-hashed TF-IDF here — see `tl-embed`), cluster them with Affinity
//! Propagation, and adopt the number of detected clusters as the number of
//! dates. The intuition: each major event produces a run of similar daily
//! summaries, so event clusters ≈ timeline entries.

use crate::textrank::textrank_order;
use std::collections::BTreeMap;
use tl_corpus::DatedSentence;
use tl_embed::{
    affinity_propagation, cluster_by_sparse, AffinityPropagationConfig, AnnConfig, AnnIndex,
    SentenceEmbedder,
};
use tl_nlp::{AnalysisOptions, Analyzer};
use tl_temporal::Date;

/// Configuration for the date-count predictor.
#[derive(Debug, Clone)]
pub struct AutoCompressConfig {
    /// Embedding dimension for the daily-summary encoder.
    pub embed_dim: usize,
    /// Affinity Propagation settings.
    pub ap: AffinityPropagationConfig,
    /// Only dates with at least this many sentences participate (singleton
    /// report days are mostly noise).
    pub min_sentences_per_date: usize,
    /// PageRank damping for the per-day TextRank.
    pub damping: f64,
    /// Near-duplicate candidates retrieved per daily summary (the sparse
    /// clustering's neighborhood size).
    pub knn: usize,
    /// ANN index settings for candidate retrieval.
    pub ann: AnnConfig,
    /// Force the original O(n²) dense path (`cosine_matrix` + dense AP).
    /// Only for diagnostics/regression comparison — the sparse path is
    /// bit-identical to it whenever `n <= knn + 1` (the candidate set is
    /// then the complete pair set).
    pub dense_fallback: bool,
}

impl Default for AutoCompressConfig {
    fn default() -> Self {
        Self {
            embed_dim: 256,
            ap: AffinityPropagationConfig::default(),
            min_sentences_per_date: 2,
            damping: 0.85,
            knn: 16,
            ann: AnnConfig::default(),
            dense_fallback: false,
        }
    }
}

/// Predict the number of timeline dates for a corpus.
///
/// Returns at least 1 for a non-empty corpus.
///
/// Daily summaries are embedded through the frozen (lock-free) path and
/// near-duplicates are retrieved through the date-aware ANN index, so the
/// clustering never materializes an O(n²) similarity matrix — candidate
/// pair similarities are recomputed in full `f64` precision, which keeps
/// small corpora (where the k-NN candidate set is complete) bit-identical
/// to the dense path.
pub fn predict_num_dates(sentences: &[DatedSentence], config: &AutoCompressConfig) -> usize {
    let summaries = daily_top_sentences(sentences, config);
    if summaries.is_empty() {
        return if sentences.is_empty() { 0 } else { 1 };
    }
    if summaries.len() == 1 {
        return 1;
    }
    let embedder = SentenceEmbedder::new(config.embed_dim);
    let vectors: Vec<Vec<f64>> = summaries
        .iter()
        .map(|(_, text)| embedder.embed_frozen(text))
        .collect();
    if config.dense_fallback {
        // Shared all-pairs kernel; bit-identical to the dense cosine loops.
        let sim = tl_embed::cosine_matrix(&vectors, true);
        let result = affinity_propagation(&sim, &config.ap);
        return result.num_clusters().max(1);
    }
    let index = AnnIndex::build(
        config.embed_dim,
        config.ann.clone(),
        summaries
            .iter()
            .zip(&vectors)
            .enumerate()
            .map(|(i, ((date, _), v))| (i as u64, date.days(), v.clone())),
    );
    let pairs: Vec<(usize, usize)> = index
        .knn_pairs(config.knn.max(1))
        .into_iter()
        .map(|(i, k, _)| (i, k))
        .collect();
    let result = cluster_by_sparse(
        &vectors,
        |a: &Vec<f64>, b: &Vec<f64>| tl_embed::embedding::cosine(a, b),
        &pairs,
        &config.ap,
    );
    result.num_clusters().max(1)
}

/// Top TextRank sentence per qualifying date — the "daily summaries" the
/// clustering operates on.
fn daily_top_sentences(
    sentences: &[DatedSentence],
    config: &AutoCompressConfig,
) -> Vec<(Date, String)> {
    let mut by_date: BTreeMap<Date, Vec<usize>> = BTreeMap::new();
    for (i, s) in sentences.iter().enumerate() {
        by_date.entry(s.date).or_default().push(i);
    }
    let mut analyzer = Analyzer::new(AnalysisOptions::retrieval());
    let mut out = Vec::new();
    for (date, indices) in by_date {
        if indices.len() < config.min_sentences_per_date {
            continue;
        }
        let toks: Vec<Vec<u32>> = indices
            .iter()
            .map(|&i| analyzer.analyze(&sentences[i].text))
            .collect();
        let order = textrank_order(&toks, config.damping);
        if let Some(&best) = order.first() {
            out.push((date, sentences[indices[best]].text.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent(date: &str, text: &str) -> DatedSentence {
        let d: Date = date.parse().unwrap();
        DatedSentence {
            date: d,
            pub_date: d,
            article: 0,
            sentence_index: 0,
            text: text.to_string(),
            from_mention: false,
        }
    }

    #[test]
    fn empty_corpus_predicts_zero() {
        assert_eq!(predict_num_dates(&[], &AutoCompressConfig::default()), 0);
    }

    #[test]
    fn single_date_predicts_one() {
        let corpus = vec![
            sent("2018-06-12", "the summit took place in singapore"),
            sent("2018-06-12", "trump met kim at the summit"),
        ];
        assert_eq!(
            predict_num_dates(&corpus, &AutoCompressConfig::default()),
            1
        );
    }

    #[test]
    fn distinct_events_produce_multiple_clusters() {
        // Three lexically disjoint events, each spanning several days.
        let mut corpus = Vec::new();
        let themes: [(&str, &str); 3] = [
            (
                "2018-01-10",
                "earthquake rubble rescue survivors collapsed buildings",
            ),
            (
                "2018-03-15",
                "election ballot candidate campaign votes parliament",
            ),
            (
                "2018-06-20",
                "hurricane flood evacuation coastal storm damage",
            ),
        ];
        for (start, words) in themes {
            let d0: Date = start.parse().unwrap();
            for off in 0..3 {
                let day = d0.plus_days(off);
                let date = day.to_string();
                corpus.push(sent(&date, &format!("{words} reported widely")));
                corpus.push(sent(&date, &format!("more on {words}")));
            }
        }
        let k = predict_num_dates(&corpus, &AutoCompressConfig::default());
        assert!((2..=9).contains(&k), "predicted {k}");
    }

    #[test]
    fn thin_dates_filtered() {
        let corpus = vec![
            sent("2018-01-01", "lone stray sentence"),
            sent("2018-06-12", "the summit took place"),
            sent("2018-06-12", "kim met trump at the summit"),
        ];
        let cfg = AutoCompressConfig::default();
        let tops = daily_top_sentences(&corpus, &cfg);
        assert_eq!(tops.len(), 1);
        assert_eq!(tops[0].0, "2018-06-12".parse().unwrap());
    }

    #[test]
    fn prediction_at_least_one_for_nonempty() {
        let corpus = vec![sent("2018-01-01", "single item")];
        let k = predict_num_dates(&corpus, &AutoCompressConfig::default());
        assert_eq!(k, 1);
    }

    /// The distinct-events fixture, reused by the equivalence tests.
    fn distinct_events_corpus() -> Vec<DatedSentence> {
        let mut corpus = Vec::new();
        let themes: [(&str, &str); 3] = [
            (
                "2018-01-10",
                "earthquake rubble rescue survivors collapsed buildings",
            ),
            (
                "2018-03-15",
                "election ballot candidate campaign votes parliament",
            ),
            (
                "2018-06-20",
                "hurricane flood evacuation coastal storm damage",
            ),
        ];
        for (start, words) in themes {
            let d0: Date = start.parse().unwrap();
            for off in 0..3 {
                let day = d0.plus_days(off);
                let date = day.to_string();
                corpus.push(sent(&date, &format!("{words} reported widely")));
                corpus.push(sent(&date, &format!("more on {words}")));
            }
        }
        corpus
    }

    #[test]
    fn sparse_path_matches_dense_fallback_on_small_corpus() {
        // 9 daily summaries < knn + 1 = 17 → the candidate set is complete
        // and the sparse path must agree with the dense one exactly.
        let corpus = distinct_events_corpus();
        let sparse_cfg = AutoCompressConfig::default();
        let dense_cfg = AutoCompressConfig {
            dense_fallback: true,
            ..AutoCompressConfig::default()
        };
        assert_eq!(
            predict_num_dates(&corpus, &sparse_cfg),
            predict_num_dates(&corpus, &dense_cfg)
        );
    }

    #[test]
    fn sparse_path_materializes_no_dense_matrix() {
        let corpus = distinct_events_corpus();
        let before = tl_embed::dense_cells_allocated();
        let k = predict_num_dates(&corpus, &AutoCompressConfig::default());
        assert!((2..=9).contains(&k), "predicted {k}");
        assert_eq!(
            tl_embed::dense_cells_allocated(),
            before,
            "default path must not touch cosine_matrix or dense AP"
        );
    }

    #[test]
    fn all_identical_sentences_predict_one_cluster() {
        let mut corpus = Vec::new();
        for off in 0..6 {
            let d: Date = "2018-02-01".parse().unwrap();
            let date = d.plus_days(off).to_string();
            corpus.push(sent(&date, "the exact same report text"));
            corpus.push(sent(&date, "the exact same report text"));
        }
        let k = predict_num_dates(&corpus, &AutoCompressConfig::default());
        assert!(k >= 1, "identical summaries still form >= 1 cluster: {k}");
    }
}
