//! Automatic date compression (§3.2.3): predict the number of timeline
//! dates from the corpus instead of requiring the user to preset `T`.
//!
//! Procedure from the paper: generate a daily summary for every candidate
//! date, encode the summaries into embedding vectors (BERT in the paper,
//! feature-hashed TF-IDF here — see `tl-embed`), cluster them with Affinity
//! Propagation, and adopt the number of detected clusters as the number of
//! dates. The intuition: each major event produces a run of similar daily
//! summaries, so event clusters ≈ timeline entries.

use crate::textrank::textrank_order;
use std::collections::BTreeMap;
use tl_corpus::DatedSentence;
use tl_embed::{affinity_propagation, AffinityPropagationConfig, SentenceEmbedder};
use tl_nlp::{AnalysisOptions, Analyzer};
use tl_temporal::Date;

/// Configuration for the date-count predictor.
#[derive(Debug, Clone)]
pub struct AutoCompressConfig {
    /// Embedding dimension for the daily-summary encoder.
    pub embed_dim: usize,
    /// Affinity Propagation settings.
    pub ap: AffinityPropagationConfig,
    /// Only dates with at least this many sentences participate (singleton
    /// report days are mostly noise).
    pub min_sentences_per_date: usize,
    /// PageRank damping for the per-day TextRank.
    pub damping: f64,
}

impl Default for AutoCompressConfig {
    fn default() -> Self {
        Self {
            embed_dim: 256,
            ap: AffinityPropagationConfig::default(),
            min_sentences_per_date: 2,
            damping: 0.85,
        }
    }
}

/// Predict the number of timeline dates for a corpus.
///
/// Returns at least 1 for a non-empty corpus.
pub fn predict_num_dates(sentences: &[DatedSentence], config: &AutoCompressConfig) -> usize {
    let summaries = daily_top_sentences(sentences, config);
    if summaries.is_empty() {
        return if sentences.is_empty() { 0 } else { 1 };
    }
    if summaries.len() == 1 {
        return 1;
    }
    let mut embedder = SentenceEmbedder::new(config.embed_dim);
    let vectors: Vec<Vec<f64>> = summaries
        .iter()
        .map(|(_, text)| embedder.embed(text))
        .collect();
    // Shared all-pairs kernel; bit-identical to the dense cosine loops.
    let sim = tl_embed::cosine_matrix(&vectors, true);
    let result = affinity_propagation(&sim, &config.ap);
    result.num_clusters().max(1)
}

/// Top TextRank sentence per qualifying date — the "daily summaries" the
/// clustering operates on.
fn daily_top_sentences(
    sentences: &[DatedSentence],
    config: &AutoCompressConfig,
) -> Vec<(Date, String)> {
    let mut by_date: BTreeMap<Date, Vec<usize>> = BTreeMap::new();
    for (i, s) in sentences.iter().enumerate() {
        by_date.entry(s.date).or_default().push(i);
    }
    let mut analyzer = Analyzer::new(AnalysisOptions::retrieval());
    let mut out = Vec::new();
    for (date, indices) in by_date {
        if indices.len() < config.min_sentences_per_date {
            continue;
        }
        let toks: Vec<Vec<u32>> = indices
            .iter()
            .map(|&i| analyzer.analyze(&sentences[i].text))
            .collect();
        let order = textrank_order(&toks, config.damping);
        if let Some(&best) = order.first() {
            out.push((date, sentences[indices[best]].text.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent(date: &str, text: &str) -> DatedSentence {
        let d: Date = date.parse().unwrap();
        DatedSentence {
            date: d,
            pub_date: d,
            article: 0,
            sentence_index: 0,
            text: text.to_string(),
            from_mention: false,
        }
    }

    #[test]
    fn empty_corpus_predicts_zero() {
        assert_eq!(predict_num_dates(&[], &AutoCompressConfig::default()), 0);
    }

    #[test]
    fn single_date_predicts_one() {
        let corpus = vec![
            sent("2018-06-12", "the summit took place in singapore"),
            sent("2018-06-12", "trump met kim at the summit"),
        ];
        assert_eq!(
            predict_num_dates(&corpus, &AutoCompressConfig::default()),
            1
        );
    }

    #[test]
    fn distinct_events_produce_multiple_clusters() {
        // Three lexically disjoint events, each spanning several days.
        let mut corpus = Vec::new();
        let themes: [(&str, &str); 3] = [
            (
                "2018-01-10",
                "earthquake rubble rescue survivors collapsed buildings",
            ),
            (
                "2018-03-15",
                "election ballot candidate campaign votes parliament",
            ),
            (
                "2018-06-20",
                "hurricane flood evacuation coastal storm damage",
            ),
        ];
        for (start, words) in themes {
            let d0: Date = start.parse().unwrap();
            for off in 0..3 {
                let day = d0.plus_days(off);
                let date = day.to_string();
                corpus.push(sent(&date, &format!("{words} reported widely")));
                corpus.push(sent(&date, &format!("more on {words}")));
            }
        }
        let k = predict_num_dates(&corpus, &AutoCompressConfig::default());
        assert!((2..=9).contains(&k), "predicted {k}");
    }

    #[test]
    fn thin_dates_filtered() {
        let corpus = vec![
            sent("2018-01-01", "lone stray sentence"),
            sent("2018-06-12", "the summit took place"),
            sent("2018-06-12", "kim met trump at the summit"),
        ];
        let cfg = AutoCompressConfig::default();
        let tops = daily_top_sentences(&corpus, &cfg);
        assert_eq!(tops.len(), 1);
        assert_eq!(tops[0].0, "2018-06-12".parse().unwrap());
    }

    #[test]
    fn prediction_at_least_one_for_nonempty() {
        let corpus = vec![sent("2018-01-01", "single item")];
        let k = predict_num_dates(&corpus, &AutoCompressConfig::default());
        assert_eq!(k, 1);
    }
}
