//! The shared analysis cache: tokenize the corpus **exactly once** per
//! pipeline run and hand the result to every stage.
//!
//! Before this cache existed, `Wilson::generate` analyzed the corpus twice
//! (once inside `DateGraph::build`, once inside daily-summarization prep)
//! and the real-time system re-analyzed fetched sentences on every query.
//! [`AnalysisCache`] holds the per-sentence retrieval tokens plus the
//! date → sentence-indices grouping; `DateGraph`, date selection, TextRank
//! and the post-processing vectors all read from it.
//!
//! Built either from raw sentences ([`AnalysisCache::build`], optionally in
//! parallel via `tl_nlp::analyze_batch` — results identical to serial), or
//! from already-analyzed tokens ([`AnalysisCache::from_tokens`], the
//! real-time path, where the search engine analyzed each sentence once at
//! ingest).

use std::collections::HashMap;
use tl_corpus::DatedSentence;
use tl_nlp::{analyze_batch, AnalysisOptions, Analyzer};
use tl_temporal::Date;

/// One-pass analyzed corpus: retrieval tokens per sentence and the
/// date → sentence-indices grouping, indexed parallel to the sentence
/// slice it was built from.
#[derive(Debug, Clone, Default)]
pub struct AnalysisCache {
    tokens: Vec<Vec<u32>>,
    by_date: HashMap<Date, Vec<usize>>,
}

impl AnalysisCache {
    /// Analyze `sentences` in one pass (the only corpus tokenization of a
    /// pipeline run). Returns the cache plus the analyzer owning the
    /// shared vocabulary, for frozen query analysis.
    ///
    /// With `parallel = true` the pass shards across cores; the
    /// frozen-vocabulary merge keeps tokens identical to the serial path.
    pub fn build(sentences: &[DatedSentence], parallel: bool) -> (Self, Analyzer) {
        let texts: Vec<&str> = sentences.iter().map(|s| s.text.as_str()).collect();
        let (analyzer, tokens) = analyze_batch(AnalysisOptions::retrieval(), &texts, parallel);
        (
            Self::from_tokens(tokens, sentences.iter().map(|s| s.date)),
            analyzer,
        )
    }

    /// Wrap already-analyzed tokens (one row per sentence, ids from a
    /// shared vocabulary) and group row indices by `dates`.
    pub fn from_tokens(tokens: Vec<Vec<u32>>, dates: impl IntoIterator<Item = Date>) -> Self {
        let mut by_date: HashMap<Date, Vec<usize>> = HashMap::new();
        for (i, d) in dates.into_iter().enumerate() {
            by_date.entry(d).or_default().push(i);
        }
        debug_assert!(by_date.values().map(Vec::len).sum::<usize>() == tokens.len());
        Self { tokens, by_date }
    }

    /// Wrap borrowed token rows paired with their dates — the real-time
    /// path, where rows live inside `Arc`-shared snapshot sentences and
    /// only the query-relevant subset is materialized.
    pub fn from_rows<'a>(rows: impl IntoIterator<Item = (&'a [u32], Date)>) -> Self {
        let mut tokens: Vec<Vec<u32>> = Vec::new();
        let mut by_date: HashMap<Date, Vec<usize>> = HashMap::new();
        for (row, date) in rows {
            by_date.entry(date).or_default().push(tokens.len());
            tokens.push(row.to_vec());
        }
        Self { tokens, by_date }
    }

    /// The analyzed token ids, row `i` for sentence `i`.
    pub fn tokens(&self) -> &[Vec<u32>] {
        &self.tokens
    }

    /// Sentence indices grouped by date.
    pub fn by_date(&self) -> &HashMap<Date, Vec<usize>> {
        &self.by_date
    }

    /// Number of cached sentences.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when no sentences are cached.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tl_corpus::{dated_sentences, generate, SynthConfig};
    use tl_nlp::{AnalysisOptions, Analyzer};

    fn corpus() -> Vec<DatedSentence> {
        let ds = generate(&SynthConfig::tiny());
        dated_sentences(&ds.topics[0].articles, None)
    }

    #[test]
    fn build_matches_direct_analysis() {
        let corpus = corpus();
        let (cache, analyzer) = AnalysisCache::build(&corpus, false);
        assert_eq!(cache.len(), corpus.len());
        let mut direct = Analyzer::new(AnalysisOptions::retrieval());
        for (i, s) in corpus.iter().enumerate() {
            assert_eq!(cache.tokens()[i], direct.analyze(&s.text), "sentence {i}");
        }
        assert_eq!(analyzer.vocab().len(), direct.vocab().len());
    }

    #[test]
    fn parallel_build_identical_to_serial() {
        let corpus = corpus();
        let (serial, sa) = AnalysisCache::build(&corpus, false);
        let (parallel, pa) = AnalysisCache::build(&corpus, true);
        assert_eq!(serial.tokens(), parallel.tokens());
        assert_eq!(sa.vocab().len(), pa.vocab().len());
        assert_eq!(serial.by_date().len(), parallel.by_date().len());
    }

    #[test]
    fn by_date_covers_all_sentences_in_order() {
        let corpus = corpus();
        let (cache, _) = AnalysisCache::build(&corpus, false);
        let mut seen = 0usize;
        for (date, indices) in cache.by_date() {
            assert!(indices.windows(2).all(|w| w[0] < w[1]));
            for &i in indices {
                assert_eq!(corpus[i].date, *date);
                seen += 1;
            }
        }
        assert_eq!(seen, corpus.len());
    }

    #[test]
    fn from_rows_matches_from_tokens() {
        let corpus = corpus();
        let (built, _) = AnalysisCache::build(&corpus, false);
        let rows = AnalysisCache::from_rows(
            built
                .tokens()
                .iter()
                .zip(&corpus)
                .map(|(row, s)| (row.as_slice(), s.date)),
        );
        assert_eq!(rows.tokens(), built.tokens());
        assert_eq!(rows.by_date(), built.by_date());
    }

    #[test]
    fn empty_corpus() {
        let (cache, _) = AnalysisCache::build(&[], false);
        assert!(cache.is_empty());
        assert_eq!(cache.len(), 0);
        assert!(cache.by_date().is_empty());
    }
}
