//! Simulated journalist evaluation (Table 9).
//!
//! **Substitution notice** (see DESIGN.md §2): the paper's Table 9 comes
//! from two Washington Post journalists manually ranking three
//! machine-generated timelines against the human reference on 10 sampled
//! timelines. No humans are available in this reproduction, so the panel is
//! *simulated*: each judge scores a timeline by content fidelity to the
//! reference (ROUGE-1 F1, what "comprehensiveness" correlates with) plus a
//! readability proxy (penalizing fragments and very long extractions), with
//! per-judge noise; the judges' scores are summed and the systems ranked.
//! MRR and DCG are computed exactly as in the paper.

use tl_support::rng::Rng;
use tl_rouge::{TimelineRouge, TimelineRougeMode};

/// One system's output on one sampled timeline.
pub struct JudgedEntry<'a> {
    /// System name.
    pub name: &'a str,
    /// Generated timeline.
    pub timeline: &'a [(tl_temporal::Date, Vec<String>)],
}

/// Aggregated panel outcome for one system.
#[derive(Debug, Clone, PartialEq)]
pub struct JudgeOutcome {
    /// System name.
    pub name: String,
    /// Times ranked first / second / third across samples.
    pub rank_counts: Vec<usize>,
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// Discounted cumulative gain with gain = (num_systems − rank + 1).
    pub dcg: f64,
}

/// Panel configuration.
#[derive(Debug, Clone, Copy)]
pub struct JudgePanel {
    /// Number of simulated judges (paper: 2).
    pub num_judges: usize,
    /// Std-dev of per-judge scoring noise.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for JudgePanel {
    fn default() -> Self {
        Self {
            num_judges: 2,
            noise: 0.02,
            seed: 9,
        }
    }
}

/// Readability proxy: fraction of summary sentences that are "well-formed"
/// (6–40 words). Extractive fragments and run-ons read poorly.
fn readability(timeline: &[(tl_temporal::Date, Vec<String>)]) -> f64 {
    let sents: Vec<&String> = timeline.iter().flat_map(|(_, s)| s.iter()).collect();
    if sents.is_empty() {
        return 0.0;
    }
    let ok = sents
        .iter()
        .filter(|s| {
            let words = s.split_whitespace().count();
            (6..=40).contains(&words)
        })
        .count();
    ok as f64 / sents.len() as f64
}

/// One judged sample: the competing systems' outputs plus the reference
/// timeline.
pub type JudgeSample<'a> = (Vec<JudgedEntry<'a>>, &'a [(tl_temporal::Date, Vec<String>)]);

/// Run the simulated panel over samples.
///
/// `samples[k]` holds the competing systems' outputs for sample `k`
/// (same order every sample), plus the reference. Returns one outcome per
/// system, in input order.
pub fn run_panel(samples: &[JudgeSample<'_>], panel: &JudgePanel) -> Vec<JudgeOutcome> {
    assert!(!samples.is_empty(), "no samples to judge");
    let num_systems = samples[0].0.len();
    let mut rng = Rng::seed_from_u64(panel.seed);
    let mut rouge = TimelineRouge::new();

    let mut rank_counts = vec![vec![0usize; num_systems]; num_systems];
    let mut rr_sum = vec![0.0f64; num_systems];
    let mut dcg = vec![0.0f64; num_systems];

    for (entries, reference) in samples {
        assert_eq!(entries.len(), num_systems, "system set must be constant");
        // Panel score: judges independently score, scores are summed
        // (the paper's journalists "collaborate to provide one final
        // ranking" — summing independent scores models the consensus).
        let mut totals = vec![0.0f64; num_systems];
        for (i, e) in entries.iter().enumerate() {
            let fidelity = rouge
                .rouge_n(1, TimelineRougeMode::Concat, e.timeline, reference)
                .f1;
            let read = readability(e.timeline);
            for _ in 0..panel.num_judges {
                let noise: f64 = rng.gen_range(-panel.noise..=panel.noise);
                totals[i] += 0.8 * fidelity + 0.2 * read + noise;
            }
        }
        // Rank descending.
        let mut order: Vec<usize> = (0..num_systems).collect();
        order.sort_by(|&a, &b| {
            totals[b]
                .partial_cmp(&totals[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for (rank, &sys) in order.iter().enumerate() {
            rank_counts[sys][rank] += 1;
            rr_sum[sys] += 1.0 / (rank + 1) as f64;
            // DCG with gain (num_systems − rank), log2 discount, as used
            // for the paper's 3-way ranking.
            dcg[sys] += (num_systems - rank) as f64 / ((rank + 2) as f64).log2();
        }
    }

    let k = samples.len() as f64;
    (0..num_systems)
        .map(|i| JudgeOutcome {
            name: samples[0].0[i].name.to_string(),
            rank_counts: rank_counts[i].clone(),
            mrr: rr_sum[i] / k,
            dcg: dcg[i],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tl_temporal::Date;

    fn tl(entries: &[(&str, &str)]) -> Vec<(Date, Vec<String>)> {
        entries
            .iter()
            .map(|(d, s)| (d.parse().unwrap(), vec![s.to_string()]))
            .collect()
    }

    #[test]
    fn faithful_system_ranks_first() {
        let reference = tl(&[
            ("2018-03-08", "trump agrees to meet kim for nuclear talks"),
            ("2018-06-12", "the historic summit takes place in singapore"),
        ]);
        let good = reference.clone();
        let bad = tl(&[("2018-01-01", "irrelevant gardening advice column text here")]);
        let medium = tl(&[("2018-06-12", "the summit takes place in singapore today")]);

        let samples = vec![(
            vec![
                JudgedEntry {
                    name: "good",
                    timeline: &good,
                },
                JudgedEntry {
                    name: "medium",
                    timeline: &medium,
                },
                JudgedEntry {
                    name: "bad",
                    timeline: &bad,
                },
            ],
            reference.as_slice(),
        )];
        let outcomes = run_panel(&samples, &JudgePanel::default());
        assert_eq!(outcomes[0].rank_counts[0], 1, "good system first");
        assert_eq!(outcomes[2].rank_counts[2], 1, "bad system last");
        assert!(outcomes[0].mrr > outcomes[1].mrr);
        assert!(outcomes[1].mrr > outcomes[2].mrr);
        assert!(outcomes[0].dcg > outcomes[2].dcg);
    }

    #[test]
    fn deterministic_given_seed() {
        let reference = tl(&[("2018-06-12", "summit held in singapore with leaders")]);
        let a = tl(&[("2018-06-12", "summit held in singapore")]);
        let b = tl(&[("2018-06-12", "leaders met in singapore for the summit")]);
        let samples = vec![(
            vec![
                JudgedEntry {
                    name: "a",
                    timeline: &a,
                },
                JudgedEntry {
                    name: "b",
                    timeline: &b,
                },
            ],
            reference.as_slice(),
        )];
        let o1 = run_panel(&samples, &JudgePanel::default());
        let o2 = run_panel(&samples, &JudgePanel::default());
        assert_eq!(o1, o2);
    }

    #[test]
    fn mrr_bounds() {
        let reference = tl(&[("2018-06-12", "summit")]);
        let x = tl(&[("2018-06-12", "summit happened here today somewhere nearby")]);
        let samples = vec![(
            vec![JudgedEntry {
                name: "only",
                timeline: &x,
            }],
            reference.as_slice(),
        )];
        let o = run_panel(&samples, &JudgePanel::default());
        assert_eq!(o[0].mrr, 1.0);
    }

    #[test]
    fn readability_prefers_full_sentences() {
        let frag = tl(&[("2018-06-12", "ok")]);
        let full = tl(&[(
            "2018-06-12",
            "the leaders met at the summit venue in singapore",
        )]);
        assert!(readability(&full) > readability(&frag));
        assert_eq!(readability(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_samples_panic() {
        run_panel(&[], &JudgePanel::default());
    }
}
