//! Experiment harness for the WILSON reproduction.
//!
//! One binary per table/figure of the paper regenerates that artifact on the
//! synthetic datasets (see `DESIGN.md` §3 for the index):
//!
//! ```text
//! cargo run --release -p tl-eval --bin table2   # edge weights W1–W4
//! cargo run --release -p tl-eval --bin table3   # date coverage
//! cargo run --release -p tl-eval --bin table4   # dataset overview
//! cargo run --release -p tl-eval --bin table5   # Timeline17 baselines
//! cargo run --release -p tl-eval --bin table6   # Crisis baselines
//! cargo run --release -p tl-eval --bin table7   # TILSE comparison + ablations
//! cargo run --release -p tl-eval --bin table8   # empirical upper bounds
//! cargo run --release -p tl-eval --bin table9   # simulated journalist study
//! cargo run --release -p tl-eval --bin fig2     # running time vs corpus size
//! cargo run --release -p tl-eval --bin fig4     # selected-date CDFs
//! cargo run --release -p tl-eval --bin fig5     # post-processing sweep
//! cargo run --release -p tl-eval --bin fig6     # automatic date compression
//! ```
//!
//! Each prints the paper's reported numbers next to the measured ones. The
//! corpus scale defaults to a size that finishes in minutes (the paper
//! itself runs TILSE on keyword-filtered corpora for the same reason,
//! §3.1.3) and can be overridden with the `TL_SCALE` environment variable.
#![warn(missing_docs)]

pub mod judge;
pub mod oracle;
pub mod paper;
pub mod protocol;
pub mod report;
pub mod table;

pub use protocol::{evaluate_method, evaluate_methods, DatasetChoice, MethodMetrics, UnitMetrics};
