//! ROUGE-optimizing oracles for the empirical upper bounds of Table 8.
//!
//! The paper's Table 8 reports two bounds:
//!
//! * **submodular-framework bound** — generated with ground-truth dates *and*
//!   ground-truth summaries by greedily optimizing ROUGE F1 directly (a
//!   supervised oracle over sentence selection),
//! * **two-stage bound** — ground-truth dates fed into WILSON's ordinary
//!   (unsupervised) daily summarizer; only the dates are oracle knowledge.
//!
//! This module implements the first; the second is
//! [`tl_wilson::Wilson::generate_on_dates`] with ground-truth dates.
//!
//! The greedy step is computed *incrementally*: per-candidate gain needs
//! only the candidate's own n-grams against the remaining (unclipped)
//! reference budget, so one selection round is `O(Σ|candidate|)` instead of
//! re-scoring the whole growing summary.

use std::collections::HashMap;
use tl_corpus::{DatedSentence, Timeline};
use tl_nlp::ngram::{ngrams, total, NgramCounts};
use tl_rouge::RougeScorer;
use tl_temporal::Date;

/// Incremental clipped-overlap state for one n-gram order.
struct OverlapState<const N: usize> {
    reference: NgramCounts<N>,
    current: NgramCounts<N>,
    ref_total: f64,
    sys_total: f64,
    matched: f64,
}

impl<const N: usize> OverlapState<N> {
    fn new(ref_tokens: &[u32]) -> Self {
        let reference = ngrams::<N>(ref_tokens);
        let ref_total = total(&reference) as f64;
        Self {
            reference,
            current: HashMap::new(),
            ref_total,
            sys_total: 0.0,
            matched: 0.0,
        }
    }

    /// Clipped-match and total deltas from adding `cand` (not committed).
    fn deltas(&self, cand: &NgramCounts<N>, cand_total: u64) -> (f64, f64) {
        let mut dm = 0.0;
        for (k, &c) in cand {
            let Some(&r) = self.reference.get(k) else {
                continue;
            };
            let cur = self.current.get(k).copied().unwrap_or(0);
            dm += (r.min(cur + c) - r.min(cur)) as f64;
        }
        (dm, cand_total as f64)
    }

    fn commit(&mut self, cand: &NgramCounts<N>, cand_total: u64) {
        let (dm, dt) = self.deltas(cand, cand_total);
        self.matched += dm;
        self.sys_total += dt;
        for (k, &c) in cand {
            *self.current.entry(*k).or_insert(0) += c;
        }
    }

    fn f1_after(&self, dm: f64, dt: f64) -> f64 {
        let matched = self.matched + dm;
        let sys_total = self.sys_total + dt;
        if sys_total == 0.0 || self.ref_total == 0.0 {
            return 0.0;
        }
        let p = matched / sys_total;
        let r = matched / self.ref_total;
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    fn f1(&self) -> f64 {
        self.f1_after(0.0, 0.0)
    }
}

/// Greedily select up to `t × n` sentences (≤ `n` per date, ≤ `t` dates)
/// maximizing concat ROUGE-1 + ROUGE-2 F1 against the reference text — the
/// supervised upper bound of the one-stage (global) framework.
///
/// Boundary bigrams between concatenated sentences are ignored (each
/// sentence's n-grams are counted independently), a negligible and
/// direction-free approximation at summary scale.
pub fn rouge_oracle_timeline(
    sentences: &[DatedSentence],
    reference_text: &str,
    t: usize,
    n: usize,
) -> Timeline {
    if sentences.is_empty() || t == 0 || n == 0 {
        return Timeline::default();
    }
    let mut scorer = RougeScorer::new();
    let ref_tokens = scorer.tokens(reference_text);
    let sent_tokens: Vec<Vec<u32>> = sentences.iter().map(|s| scorer.tokens(&s.text)).collect();
    let cand_uni: Vec<NgramCounts<1>> = sent_tokens.iter().map(|t| ngrams(t)).collect();
    let cand_bi: Vec<NgramCounts<2>> = sent_tokens.iter().map(|t| ngrams(t)).collect();
    let cand_uni_total: Vec<u64> = cand_uni.iter().map(total).collect();
    let cand_bi_total: Vec<u64> = cand_bi.iter().map(total).collect();

    let mut uni = OverlapState::<1>::new(&ref_tokens);
    let mut bi = OverlapState::<2>::new(&ref_tokens);

    let mut selected: Vec<usize> = Vec::new();
    let mut date_counts: HashMap<Date, usize> = Default::default();
    let mut taken = vec![false; sentences.len()];
    let budget = t.saturating_mul(n);
    let mut best_score = 0.0f64;

    while selected.len() < budget {
        let mut best: Option<(usize, f64)> = None;
        for j in 0..sentences.len() {
            if taken[j] || sent_tokens[j].is_empty() {
                continue;
            }
            let dc = date_counts.get(&sentences[j].date).copied().unwrap_or(0);
            if dc >= n || (dc == 0 && date_counts.len() >= t) {
                continue;
            }
            let (du_m, du_t) = uni.deltas(&cand_uni[j], cand_uni_total[j]);
            let (db_m, db_t) = bi.deltas(&cand_bi[j], cand_bi_total[j]);
            let s = uni.f1_after(du_m, du_t) + bi.f1_after(db_m, db_t);
            if best.is_none_or(|(_, bs)| s > bs) {
                best = Some((j, s));
            }
        }
        let Some((j, s)) = best else { break };
        if s <= best_score {
            break; // adding anything else only dilutes F1
        }
        best_score = s;
        taken[j] = true;
        selected.push(j);
        uni.commit(&cand_uni[j], cand_uni_total[j]);
        bi.commit(&cand_bi[j], cand_bi_total[j]);
        debug_assert!((uni.f1() + bi.f1() - best_score).abs() < 1e-9);
        *date_counts.entry(sentences[j].date).or_insert(0) += 1;
    }

    let mut by_date: HashMap<Date, Vec<usize>> = Default::default();
    for &j in &selected {
        by_date.entry(sentences[j].date).or_default().push(j);
    }
    Timeline::new(
        by_date
            .into_iter()
            .map(|(d, mut ix)| {
                ix.sort_unstable();
                (
                    d,
                    ix.into_iter().map(|i| sentences[i].text.clone()).collect(),
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent(day: i32, text: &str) -> DatedSentence {
        let date = Date::from_days(17000 + day);
        DatedSentence {
            date,
            pub_date: date,
            article: 0,
            sentence_index: 0,
            text: text.to_string(),
            from_mention: false,
        }
    }

    #[test]
    fn oracle_picks_reference_matching_sentences() {
        let corpus = vec![
            sent(0, "the ceasefire agreement was signed by both factions"),
            sent(0, "completely unrelated municipal budget discussion"),
            sent(5, "aid convoys entered the besieged city"),
        ];
        let reference = "ceasefire agreement signed by factions. aid convoys entered the city.";
        let tl = rouge_oracle_timeline(&corpus, reference, 2, 1);
        let all: Vec<&String> = tl.entries.iter().flat_map(|(_, s)| s.iter()).collect();
        assert!(all.iter().any(|s| s.contains("ceasefire")));
        assert!(all.iter().any(|s| s.contains("convoys")));
        assert!(!all.iter().any(|s| s.contains("municipal")));
    }

    #[test]
    fn oracle_stops_when_f1_would_drop() {
        // One perfect sentence; adding noise only dilutes precision.
        let corpus = vec![
            sent(0, "summit held in singapore"),
            sent(1, "totally irrelevant gardening column content"),
        ];
        let tl = rouge_oracle_timeline(&corpus, "summit held in singapore", 2, 1);
        assert_eq!(tl.num_sentences(), 1);
    }

    #[test]
    fn respects_constraints() {
        let corpus: Vec<DatedSentence> = (0..10)
            .map(|i| sent(i % 2, &format!("reference word{i} appears here")))
            .collect();
        let reference: String = (0..10).map(|i| format!("word{i} ")).collect();
        let tl = rouge_oracle_timeline(&corpus, &reference, 2, 3);
        assert!(tl.num_dates() <= 2);
        for (_, s) in &tl.entries {
            assert!(s.len() <= 3);
        }
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(rouge_oracle_timeline(&[], "ref", 2, 2).num_dates(), 0);
        let corpus = vec![sent(0, "text")];
        assert_eq!(rouge_oracle_timeline(&corpus, "ref", 0, 2).num_dates(), 0);
    }

    #[test]
    fn incremental_state_matches_direct_computation() {
        // The incremental F1 must equal a from-scratch ROUGE on the final
        // selection (modulo boundary bigrams, absent here by construction).
        let corpus = vec![
            sent(0, "alpha beta gamma delta"),
            sent(1, "epsilon zeta eta theta"),
        ];
        let reference = "alpha beta gamma delta epsilon zeta";
        let tl = rouge_oracle_timeline(&corpus, reference, 2, 1);
        assert_eq!(tl.num_sentences(), 2);
        // Hand check: all reference unigrams except "eta theta" extras.
        let mut scorer = RougeScorer::new();
        let sys_text: String = tl
            .entries
            .iter()
            .flat_map(|(_, s)| s.iter().cloned())
            .collect::<Vec<_>>()
            .join(" ");
        let direct = scorer.rouge_1(&sys_text, reference);
        assert!(direct.f1 > 0.7);
    }
}
