//! Reference numbers reported in the paper, for side-by-side printing.
//!
//! Two kinds of rows appear in the paper's tables: numbers the authors
//! *measured* (WILSON, its ablations, TILSE, Random/MEAD/Chieu/ETS) and
//! numbers *quoted from prior publications* (the supervised baselines in
//! Tables 5–6 — Tran, Regression, Wang, Liang — which the paper itself did
//! not re-run, §3.1.3). Everything here is a constant lifted from the
//! paper's camera-ready tables.

/// One row of Table 5 / Table 6: concat ROUGE-1 / ROUGE-2 / ROUGE-S\* F1.
#[derive(Debug, Clone, Copy)]
pub struct ConcatRow {
    /// Method name as printed.
    pub method: &'static str,
    /// Reported ROUGE-1 F1.
    pub r1: f64,
    /// Reported ROUGE-2 F1.
    pub r2: f64,
    /// Reported ROUGE-S\* F1.
    pub rs: f64,
    /// True if the paper quoted this row from earlier publications rather
    /// than running the system.
    pub quoted: bool,
}

/// Table 5 (Timeline17), as printed in the paper.
pub const TABLE5_TIMELINE17: &[ConcatRow] = &[
    ConcatRow {
        method: "Random",
        r1: 0.128,
        r2: 0.021,
        rs: 0.026,
        quoted: false,
    },
    ConcatRow {
        method: "Chieu et al.",
        r1: 0.202,
        r2: 0.037,
        rs: 0.041,
        quoted: true,
    },
    ConcatRow {
        method: "MEAD",
        r1: 0.208,
        r2: 0.049,
        rs: 0.039,
        quoted: true,
    },
    ConcatRow {
        method: "ETS",
        r1: 0.207,
        r2: 0.047,
        rs: 0.042,
        quoted: true,
    },
    ConcatRow {
        method: "Tran et al.",
        r1: 0.230,
        r2: 0.053,
        rs: 0.050,
        quoted: true,
    },
    ConcatRow {
        method: "Regression",
        r1: 0.303,
        r2: 0.078,
        rs: 0.081,
        quoted: true,
    },
    ConcatRow {
        method: "Wang et al. (Text)",
        r1: 0.312,
        r2: 0.089,
        rs: 0.112,
        quoted: true,
    },
    ConcatRow {
        method: "Wang et al. (Text+Vision)",
        r1: 0.331,
        r2: 0.091,
        rs: 0.115,
        quoted: true,
    },
    ConcatRow {
        method: "Liang et al.",
        r1: 0.334,
        r2: 0.105,
        rs: 0.103,
        quoted: true,
    },
    ConcatRow {
        method: "WILSON (Ours)",
        r1: 0.370,
        r2: 0.083,
        rs: 0.141,
        quoted: false,
    },
];

/// Table 6 (Crisis), as printed in the paper.
pub const TABLE6_CRISIS: &[ConcatRow] = &[
    ConcatRow {
        method: "Regression",
        r1: 0.207,
        r2: 0.045,
        rs: 0.039,
        quoted: true,
    },
    ConcatRow {
        method: "Wang et al. (Text)",
        r1: 0.211,
        r2: 0.046,
        rs: 0.040,
        quoted: true,
    },
    ConcatRow {
        method: "Wang et al. (Text+Vision)",
        r1: 0.232,
        r2: 0.052,
        rs: 0.044,
        quoted: true,
    },
    ConcatRow {
        method: "Liang et al.",
        r1: 0.268,
        r2: 0.057,
        rs: 0.054,
        quoted: true,
    },
    ConcatRow {
        method: "WILSON (Ours)",
        r1: 0.352,
        r2: 0.074,
        rs: 0.123,
        quoted: false,
    },
];

/// One row of Table 7: time-sensitive ROUGE + date F1 + runtime.
#[derive(Debug, Clone, Copy)]
pub struct Table7Row {
    /// Method name as printed.
    pub method: &'static str,
    /// Concat ROUGE-1 / ROUGE-2.
    pub concat_r1: f64,
    /// Concat ROUGE-2.
    pub concat_r2: f64,
    /// Agreement ROUGE-1 / ROUGE-2.
    pub agree_r1: f64,
    /// Agreement ROUGE-2.
    pub agree_r2: f64,
    /// Align+ m:1 ROUGE-1 / ROUGE-2.
    pub align_r1: f64,
    /// Align+ m:1 ROUGE-2.
    pub align_r2: f64,
    /// Date-selection F1.
    pub date_f1: f64,
    /// Seconds per timeline on the authors' 24-core machine.
    pub seconds: f64,
}

/// Table 7, Timeline17 block.
pub const TABLE7_TIMELINE17: &[Table7Row] = &[
    Table7Row {
        method: "ASMDS",
        concat_r1: 0.3452,
        concat_r2: 0.0890,
        agree_r1: 0.0913,
        agree_r2: 0.0270,
        align_r1: 0.1047,
        align_r2: 0.0299,
        date_f1: 0.5437,
        seconds: 338.68,
    },
    Table7Row {
        method: "TLSCONSTRAINTS",
        concat_r1: 0.3685,
        concat_r2: 0.0916,
        agree_r1: 0.0912,
        agree_r2: 0.0242,
        align_r1: 0.1049,
        align_r2: 0.0270,
        date_f1: 0.5127,
        seconds: 560.24,
    },
    Table7Row {
        method: "WILSON-uniform",
        concat_r1: 0.3659,
        concat_r2: 0.0848,
        agree_r1: 0.0754,
        agree_r2: 0.0191,
        align_r1: 0.0924,
        align_r2: 0.0218,
        date_f1: 0.4366,
        seconds: 1.97,
    },
    Table7Row {
        method: "WILSON-Tran",
        concat_r1: 0.4007,
        concat_r2: 0.0993,
        agree_r1: 0.1035,
        agree_r2: 0.0293,
        align_r1: 0.1181,
        align_r2: 0.0321,
        date_f1: 0.5668,
        seconds: 2.12,
    },
    Table7Row {
        method: "WILSON w/o Post",
        concat_r1: 0.4036,
        concat_r2: 0.1005,
        agree_r1: 0.1057,
        agree_r2: 0.0318,
        align_r1: 0.1202,
        align_r2: 0.0344,
        date_f1: 0.5542,
        seconds: 5.63,
    },
    Table7Row {
        method: "WILSON",
        concat_r1: 0.4075,
        concat_r2: 0.1013,
        agree_r1: 0.1065,
        agree_r2: 0.0324,
        align_r1: 0.1211,
        align_r2: 0.0350,
        date_f1: 0.5542,
        seconds: 7.59,
    },
];

/// Table 7, Crisis block.
pub const TABLE7_CRISIS: &[Table7Row] = &[
    Table7Row {
        method: "ASMDS",
        concat_r1: 0.3066,
        concat_r2: 0.0645,
        agree_r1: 0.0415,
        agree_r2: 0.0091,
        align_r1: 0.0658,
        align_r2: 0.0135,
        date_f1: 0.2435,
        seconds: 3055.96,
    },
    Table7Row {
        method: "TLSCONSTRAINTS",
        concat_r1: 0.3307,
        concat_r2: 0.0693,
        agree_r1: 0.0564,
        agree_r2: 0.0130,
        align_r1: 0.0764,
        align_r2: 0.0166,
        date_f1: 0.2739,
        seconds: 4098.07,
    },
    Table7Row {
        method: "WILSON-uniform",
        concat_r1: 0.3314,
        concat_r2: 0.0551,
        agree_r1: 0.0235,
        agree_r2: 0.0059,
        align_r1: 0.0392,
        align_r2: 0.0080,
        date_f1: 0.1251,
        seconds: 4.68,
    },
    Table7Row {
        method: "WILSON-Tran",
        concat_r1: 0.3575,
        concat_r2: 0.0739,
        agree_r1: 0.0621,
        agree_r2: 0.0167,
        align_r1: 0.0798,
        align_r2: 0.0202,
        date_f1: 0.2726,
        seconds: 5.69,
    },
    Table7Row {
        method: "WILSON w/o Post",
        concat_r1: 0.3600,
        concat_r2: 0.0756,
        agree_r1: 0.0677,
        agree_r2: 0.0201,
        align_r1: 0.0843,
        align_r2: 0.0230,
        date_f1: 0.2748,
        seconds: 22.95,
    },
    Table7Row {
        method: "WILSON",
        concat_r1: 0.3605,
        concat_r2: 0.0759,
        agree_r1: 0.0679,
        agree_r2: 0.0203,
        align_r1: 0.0846,
        align_r2: 0.0232,
        date_f1: 0.2748,
        seconds: 30.14,
    },
];

/// One row of Table 2 (edge weights): date F1 + ROUGE-1/2.
#[derive(Debug, Clone, Copy)]
pub struct Table2Row {
    /// Edge weight label.
    pub weight: &'static str,
    /// Date F1.
    pub date_f1: f64,
    /// ROUGE-1 F1.
    pub r1: f64,
    /// ROUGE-2 F1.
    pub r2: f64,
}

/// Table 2, Timeline17 block.
pub const TABLE2_TIMELINE17: &[Table2Row] = &[
    Table2Row {
        weight: "W1",
        date_f1: 0.5512,
        r1: 0.3905,
        r2: 0.0969,
    },
    Table2Row {
        weight: "W2",
        date_f1: 0.5528,
        r1: 0.4029,
        r2: 0.1002,
    },
    Table2Row {
        weight: "W3",
        date_f1: 0.5628,
        r1: 0.4009,
        r2: 0.0995,
    },
    Table2Row {
        weight: "W4",
        date_f1: 0.5068,
        r1: 0.3934,
        r2: 0.0934,
    },
];

/// Table 2, Crisis block.
pub const TABLE2_CRISIS: &[Table2Row] = &[
    Table2Row {
        weight: "W1",
        date_f1: 0.3022,
        r1: 0.3476,
        r2: 0.0715,
    },
    Table2Row {
        weight: "W2",
        date_f1: 0.2838,
        r1: 0.3604,
        r2: 0.0715,
    },
    Table2Row {
        weight: "W3",
        date_f1: 0.2710,
        r1: 0.3575,
        r2: 0.0738,
    },
    Table2Row {
        weight: "W4",
        date_f1: 0.2925,
        r1: 0.3509,
        r2: 0.0726,
    },
];

/// One row of Table 3 (date coverage).
#[derive(Debug, Clone, Copy)]
pub struct Table3Row {
    /// Date-selection strategy.
    pub strategy: &'static str,
    /// Date coverage within ±3 days.
    pub coverage3: f64,
    /// Date F1.
    pub date_f1: f64,
    /// Concat ROUGE-1.
    pub r1: f64,
    /// Concat ROUGE-2.
    pub r2: f64,
    /// Concat ROUGE-S\*.
    pub rs: f64,
}

/// Table 3, Timeline17 block.
pub const TABLE3_TIMELINE17: &[Table3Row] = &[
    Table3Row {
        strategy: "Uniform",
        coverage3: 0.8398,
        date_f1: 0.4475,
        r1: 0.3896,
        r2: 0.0917,
        rs: 0.1598,
    },
    Table3Row {
        strategy: "W3",
        coverage3: 0.7828,
        date_f1: 0.5668,
        r1: 0.4000,
        r2: 0.0995,
        rs: 0.1676,
    },
    Table3Row {
        strategy: "W3 + Recency",
        coverage3: 0.8111,
        date_f1: 0.5542,
        r1: 0.4036,
        r2: 0.1005,
        rs: 0.1702,
    },
];

/// Table 3, Crisis block.
pub const TABLE3_CRISIS: &[Table3Row] = &[
    Table3Row {
        strategy: "Uniform",
        coverage3: 0.5932,
        date_f1: 0.1325,
        r1: 0.3387,
        r2: 0.0570,
        rs: 0.1138,
    },
    Table3Row {
        strategy: "W3",
        coverage3: 0.5459,
        date_f1: 0.2726,
        r1: 0.3573,
        r2: 0.0738,
        rs: 0.1246,
    },
    Table3Row {
        strategy: "W3 + Recency",
        coverage3: 0.5885,
        date_f1: 0.2748,
        r1: 0.3597,
        r2: 0.0760,
        rs: 0.1270,
    },
];

/// Table 4 (dataset overview), as printed.
#[derive(Debug, Clone, Copy)]
pub struct Table4Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Number of topics.
    pub topics: usize,
    /// Number of timelines.
    pub timelines: usize,
    /// Average documents per timeline.
    pub docs: f64,
    /// Average sentences per timeline.
    pub sents: f64,
    /// Average duration days.
    pub duration: f64,
}

/// Table 4 rows.
pub const TABLE4: &[Table4Row] = &[
    Table4Row {
        dataset: "Timeline17",
        topics: 9,
        timelines: 19,
        docs: 739.0,
        sents: 36_915.0,
        duration: 242.0,
    },
    Table4Row {
        dataset: "Crisis",
        topics: 4,
        timelines: 22,
        docs: 5_130.0,
        sents: 173_761.0,
        duration: 388.0,
    },
];

/// Table 8 (empirical upper bounds): ROUGE-1 / ROUGE-2.
#[derive(Debug, Clone, Copy)]
pub struct Table8Row {
    /// Dataset.
    pub dataset: &'static str,
    /// Bound description.
    pub bound: &'static str,
    /// ROUGE-1 F1.
    pub r1: f64,
    /// ROUGE-2 F1.
    pub r2: f64,
}

/// Table 8 rows.
pub const TABLE8: &[Table8Row] = &[
    Table8Row {
        dataset: "timeline17",
        bound: "Submodularity framework",
        r1: 0.50,
        r2: 0.18,
    },
    Table8Row {
        dataset: "timeline17",
        bound: "Ground-truth date + Daily summary",
        r1: 0.41,
        r2: 0.11,
    },
    Table8Row {
        dataset: "Crisis",
        bound: "Submodularity framework",
        r1: 0.49,
        r2: 0.16,
    },
    Table8Row {
        dataset: "Crisis",
        bound: "Ground-truth date + Daily summary",
        r1: 0.42,
        r2: 0.10,
    },
];

/// Table 9 (journalist evaluation): rank counts, MRR, DCG.
#[derive(Debug, Clone, Copy)]
pub struct Table9Row {
    /// Method.
    pub method: &'static str,
    /// Times ranked 1st / 2nd / 3rd over the 10 sampled timelines.
    pub firsts: usize,
    /// Times ranked 2nd.
    pub seconds: usize,
    /// Times ranked 3rd.
    pub thirds: usize,
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// Discounted cumulative gain.
    pub dcg: f64,
}

/// Table 9 rows.
pub const TABLE9: &[Table9Row] = &[
    Table9Row {
        method: "ASMDS",
        firsts: 4,
        seconds: 3,
        thirds: 3,
        mrr: 0.72,
        dcg: 7.39,
    },
    Table9Row {
        method: "TLSCONSTRAINTS",
        firsts: 1,
        seconds: 6,
        thirds: 3,
        mrr: 0.56,
        dcg: 6.29,
    },
    Table9Row {
        method: "WILSON (Ours)",
        firsts: 5,
        seconds: 1,
        thirds: 4,
        mrr: 0.76,
        dcg: 7.63,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_claims_hold_in_constants() {
        // "improving ROUGE-2 F1 by 9.5%~17.7%" vs TILSE (concat, Table 7).
        let t17_best_tilse = TABLE7_TIMELINE17[1].concat_r2; // TLSConstraints
        let t17_wilson = TABLE7_TIMELINE17[5].concat_r2;
        let impr_t17 = (t17_wilson - t17_best_tilse) / t17_best_tilse;
        assert!((0.09..=0.12).contains(&impr_t17), "{impr_t17}");
        let cr_best_tilse = TABLE7_CRISIS[1].concat_r2;
        let cr_wilson = TABLE7_CRISIS[5].concat_r2;
        let impr_cr = (cr_wilson - cr_best_tilse) / cr_best_tilse;
        assert!((0.08..=0.11).contains(&impr_cr), "{impr_cr}");
        // ASMDS-relative improvements reach 17.7% on Crisis.
        let impr_asmds = (cr_wilson - TABLE7_CRISIS[0].concat_r2) / TABLE7_CRISIS[0].concat_r2;
        assert!((0.17..=0.18).contains(&impr_asmds), "{impr_asmds}");
    }

    #[test]
    fn two_orders_of_magnitude_speedup() {
        for (tilse, wilson) in [
            (TABLE7_TIMELINE17[0].seconds, TABLE7_TIMELINE17[5].seconds),
            (TABLE7_CRISIS[0].seconds, TABLE7_CRISIS[5].seconds),
        ] {
            assert!(tilse / wilson > 40.0, "{tilse} / {wilson}");
        }
    }

    #[test]
    fn wilson_wins_every_table7_metric() {
        for block in [TABLE7_TIMELINE17, TABLE7_CRISIS] {
            let wilson = block.last().expect("non-empty");
            for tilse in &block[..2] {
                assert!(wilson.concat_r1 > tilse.concat_r1);
                assert!(wilson.concat_r2 > tilse.concat_r2);
                assert!(wilson.agree_r2 > tilse.agree_r2);
                assert!(wilson.align_r2 > tilse.align_r2);
            }
        }
    }

    #[test]
    fn table3_recency_improves_rouge() {
        for block in [TABLE3_TIMELINE17, TABLE3_CRISIS] {
            let w3 = &block[1];
            let rec = &block[2];
            assert!(rec.r1 >= w3.r1);
            assert!(rec.r2 >= w3.r2);
            assert!(rec.coverage3 >= w3.coverage3);
        }
    }
}
