//! The standard evaluation protocol (§3.1.3 of the paper).
//!
//! For every evaluation unit (topic corpus + one ground-truth timeline):
//! `T` is set to the number of ground-truth dates and `N` to the rounded
//! average ground-truth sentences per date; the method generates a timeline
//! from the dated-sentence corpus; concat / agreement / align ROUGE, date
//! F1 and date coverage are scored against the ground truth; generation
//! wall time is recorded. Aggregates are means over units.

use std::time::Instant;
use tl_corpus::{
    dated_sentences, generate, CorpusAnalysis, Dataset, DatedSentence, SynthConfig, Timeline,
    TimelineGenerator,
};
use tl_rouge::{date_coverage, date_f1, TimelineRouge, TimelineRougeMode};
use tl_support::par::par_map;

/// Which calibrated dataset profile to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetChoice {
    /// The Timeline17-shaped profile.
    Timeline17,
    /// The Crisis-shaped profile.
    Crisis,
}

impl DatasetChoice {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Timeline17 => "Timeline17",
            Self::Crisis => "Crisis",
        }
    }

    /// Default corpus scale: sized so the quadratic baseline finishes in
    /// minutes (the paper likewise filters the corpus for TILSE, §3.1.3).
    /// Override with `TL_SCALE`.
    pub fn default_scale(self) -> f64 {
        match self {
            Self::Timeline17 => 0.10,
            Self::Crisis => 0.04,
        }
    }

    /// Build the generator config at the environment-resolved scale.
    pub fn config(self) -> SynthConfig {
        let base = match self {
            Self::Timeline17 => SynthConfig::timeline17(),
            Self::Crisis => SynthConfig::crisis(),
        };
        base.with_scale(resolve_scale(self))
    }

    /// Generate the dataset.
    pub fn dataset(self) -> Dataset {
        generate(&self.config())
    }
}

/// `TL_SCALE` override or the per-dataset default.
pub fn resolve_scale(choice: DatasetChoice) -> f64 {
    std::env::var("TL_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or_else(|| choice.default_scale())
}

/// Metrics of one method on one evaluation unit.
#[derive(Debug, Clone, Default)]
pub struct UnitMetrics {
    /// Concat ROUGE-1 / ROUGE-2 F1.
    pub concat_r1: f64,
    /// Concat ROUGE-2 F1.
    pub concat_r2: f64,
    /// Concat ROUGE-S\* F1.
    pub concat_rs: f64,
    /// Agreement ROUGE-1 F1.
    pub agree_r1: f64,
    /// Agreement ROUGE-2 F1.
    pub agree_r2: f64,
    /// Align+ m:1 ROUGE-1 F1.
    pub align_r1: f64,
    /// Align+ m:1 ROUGE-2 F1.
    pub align_r2: f64,
    /// Date-selection F1.
    pub date_f1: f64,
    /// Date coverage within ±3 days.
    pub date_coverage3: f64,
    /// Generation wall time in seconds.
    pub seconds: f64,
}

/// Aggregated metrics of one method over a dataset.
#[derive(Debug, Clone, Default)]
pub struct MethodMetrics {
    /// Method display name.
    pub name: String,
    /// Per-unit metrics, in `Dataset::eval_units` order.
    pub units: Vec<UnitMetrics>,
}

macro_rules! mean_of {
    ($($field:ident),+) => {
        $(
            /// Mean of the per-unit field.
            pub fn $field(&self) -> f64 {
                if self.units.is_empty() {
                    0.0
                } else {
                    self.units.iter().map(|u| u.$field).sum::<f64>() / self.units.len() as f64
                }
            }
        )+
    };
}

impl MethodMetrics {
    mean_of!(
        concat_r1,
        concat_r2,
        concat_rs,
        agree_r1,
        agree_r2,
        align_r1,
        align_r2,
        date_f1,
        date_coverage3,
        seconds
    );

    /// Per-unit values of one metric (for significance testing).
    pub fn series(&self, metric: fn(&UnitMetrics) -> f64) -> Vec<f64> {
        self.units.iter().map(metric).collect()
    }
}

/// Run a method over every evaluation unit of a dataset.
///
/// The dated-sentence pre-processing is *excluded* from the timing, exactly
/// as the paper excludes temporal tagging from the speed comparison
/// (Appendix A: "we do not consider the temporal tagging in the
/// pre-processing, and only measure the speed of generation on the tagged
/// sentences"). The shared per-topic tokenization pass is likewise
/// pre-processing and untimed; `seconds` measures the per-unit
/// `generate_analyzed` call.
pub fn evaluate_method<M: TimelineGenerator + ?Sized>(
    dataset: &Dataset,
    method: &M,
) -> MethodMetrics {
    let wrapped = ByRef(method);
    evaluate_methods(dataset, &[&wrapped])
        .pop()
        .expect("one method in, one result out")
}

/// Sized adapter so `evaluate_method` can accept unsized `M` (e.g. a bare
/// `dyn TimelineGenerator`) and still hand a trait object to the fan-out.
struct ByRef<'a, M: ?Sized>(&'a M);

impl<M: TimelineGenerator + ?Sized> TimelineGenerator for ByRef<'_, M> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn generate(&self, sentences: &[DatedSentence], query: &str, t: usize, n: usize) -> Timeline {
        self.0.generate(sentences, query, t, n)
    }

    fn generate_analyzed(
        &self,
        analysis: &CorpusAnalysis,
        sentences: &[DatedSentence],
        query: &str,
        t: usize,
        n: usize,
    ) -> Timeline {
        self.0.generate_analyzed(analysis, sentences, query, t, n)
    }
}

/// Evaluate several systems over a dataset in one pass.
///
/// Every (topic × reference timeline × system) unit fans out across
/// threads via `tl_support::par_map` (order-preserving, so the merge is
/// deterministic and results are identical to the serial loop), and each
/// topic's corpus is dated **and tokenized once**, shared by all systems
/// through [`TimelineGenerator::generate_analyzed`] instead of once per
/// (system × topic). Results are in `methods` order, each with units in
/// `Dataset::eval_units` order — exactly what sequential
/// [`evaluate_method`] calls would produce.
pub fn evaluate_methods(
    dataset: &Dataset,
    methods: &[&dyn TimelineGenerator],
) -> Vec<MethodMetrics> {
    // Untimed shared pre-processing: date pairing + one tokenization pass
    // per topic (the paper's protocol excludes pre-processing from timing).
    let prepped: Vec<(Vec<DatedSentence>, CorpusAnalysis)> = par_map(&dataset.topics, |topic| {
        let corpus = dated_sentences(&topic.articles, None);
        let analysis = CorpusAnalysis::build(&corpus, false);
        (corpus, analysis)
    });

    // One job per (system, topic, reference timeline), flattened
    // method-major so each method's slice is already in eval-unit order.
    let jobs: Vec<(usize, usize, usize)> = methods
        .iter()
        .enumerate()
        .flat_map(|(m, _)| {
            dataset.topics.iter().enumerate().flat_map(move |(ti, topic)| {
                (0..topic.timelines.len()).map(move |gi| (m, ti, gi))
            })
        })
        .collect();

    let scored: Vec<UnitMetrics> = par_map(&jobs, |&(m, ti, gi)| {
        let topic = &dataset.topics[ti];
        let (corpus, analysis) = &prepped[ti];
        let gt = &topic.timelines[gi];
        let t = gt.num_dates();
        let n = gt.target_sentences_per_date();
        let start = Instant::now();
        let tl = methods[m].generate_analyzed(analysis, corpus, &topic.query, t, n);
        let seconds = start.elapsed().as_secs_f64();
        let mut rouge = TimelineRouge::new();
        let sys = tl.as_slice();
        let gts = gt.as_slice();
        UnitMetrics {
            concat_r1: rouge.rouge_n(1, TimelineRougeMode::Concat, sys, gts).f1,
            concat_r2: rouge.rouge_n(2, TimelineRougeMode::Concat, sys, gts).f1,
            concat_rs: rouge.rouge_s_star_concat(sys, gts).f1,
            agree_r1: rouge.rouge_n(1, TimelineRougeMode::Agreement, sys, gts).f1,
            agree_r2: rouge.rouge_n(2, TimelineRougeMode::Agreement, sys, gts).f1,
            align_r1: rouge.rouge_n(1, TimelineRougeMode::AlignMto1, sys, gts).f1,
            align_r2: rouge.rouge_n(2, TimelineRougeMode::AlignMto1, sys, gts).f1,
            date_f1: date_f1(&tl.dates(), &gt.dates()),
            date_coverage3: date_coverage(&tl.dates(), &gt.dates(), 3),
            seconds,
        }
    });

    let per_method = dataset.num_timelines();
    let mut scored = scored.into_iter();
    methods
        .iter()
        .map(|method| MethodMetrics {
            name: method.name().to_string(),
            units: scored.by_ref().take(per_method).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tl_wilson::{Wilson, WilsonConfig};

    #[test]
    fn evaluate_on_tiny_dataset() {
        let ds = generate(&SynthConfig::tiny());
        let m = evaluate_method(&ds, &Wilson::new(WilsonConfig::default()));
        assert_eq!(m.name, "WILSON");
        assert_eq!(m.units.len(), ds.num_timelines());
        assert!(m.concat_r1() > 0.0, "concat R1 = {}", m.concat_r1());
        assert!(m.date_f1() > 0.0);
        assert!(m.seconds() > 0.0);
        for u in &m.units {
            assert!((0.0..=1.0).contains(&u.concat_r1));
            assert!((0.0..=1.0).contains(&u.date_coverage3));
            assert!(u.align_r1 >= u.agree_r1 - 1e-9, "align >= agreement");
        }
    }

    #[test]
    fn evaluate_methods_matches_individual_runs() {
        let ds = generate(&SynthConfig::tiny());
        let wilson = Wilson::new(WilsonConfig::default());
        let mead = tl_baselines::MeadBaseline::default();
        let batch = evaluate_methods(&ds, &[&wilson, &mead]);
        assert_eq!(batch.len(), 2);
        for (metrics, method) in batch
            .iter()
            .zip([&wilson as &dyn TimelineGenerator, &mead as &dyn TimelineGenerator])
        {
            assert_eq!(metrics.units.len(), ds.num_timelines());
            // Every scored unit must match a from-scratch serial `generate`
            // run (the shared-analysis path is interchangeable by contract).
            let mut rouge = TimelineRouge::new();
            let mut idx = 0;
            for topic in &ds.topics {
                let corpus = dated_sentences(&topic.articles, None);
                for gt in &topic.timelines {
                    let t = gt.num_dates();
                    let n = gt.target_sentences_per_date();
                    let tl = method.generate(&corpus, &topic.query, t, n);
                    let want = rouge.rouge_n(1, TimelineRougeMode::Concat, tl.as_slice(), gt.as_slice());
                    let u = &metrics.units[idx];
                    assert_eq!(u.concat_r1.to_bits(), want.f1.to_bits(), "{} unit {idx}", metrics.name);
                    assert_eq!(u.date_f1.to_bits(), date_f1(&tl.dates(), &gt.dates()).to_bits());
                    idx += 1;
                }
            }
        }
    }

    #[test]
    fn mean_of_empty_is_zero() {
        let m = MethodMetrics::default();
        assert_eq!(m.concat_r1(), 0.0);
        assert_eq!(m.seconds(), 0.0);
    }

    #[test]
    fn series_extracts_per_unit() {
        let m = MethodMetrics {
            name: "x".into(),
            units: vec![
                UnitMetrics {
                    concat_r2: 0.1,
                    ..Default::default()
                },
                UnitMetrics {
                    concat_r2: 0.3,
                    ..Default::default()
                },
            ],
        };
        assert_eq!(m.series(|u| u.concat_r2), vec![0.1, 0.3]);
        assert!((m.concat_r2() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn scale_env_override() {
        // resolve_scale falls back to defaults when unset/garbage.
        std::env::remove_var("TL_SCALE");
        assert_eq!(
            resolve_scale(DatasetChoice::Timeline17),
            DatasetChoice::Timeline17.default_scale()
        );
    }
}
