//! Machine-readable experiment reports.
//!
//! The table binaries print human-readable tables; this module serializes
//! the same measurements to JSON (`results/*.json`) so downstream tooling
//! (plots, regression tracking between commits) can consume them without
//! scraping text.

use crate::protocol::MethodMetrics;
use std::io;
use std::path::Path;
use tl_support::json::{obj, FromJson, Json, JsonError, ToJson};

/// One method's aggregated metrics in serializable form.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodReport {
    /// Method display name.
    pub method: String,
    /// Number of evaluation units aggregated.
    pub units: usize,
    /// Mean concat ROUGE-1 / ROUGE-2 / ROUGE-S\* F1.
    pub concat_r1: f64,
    /// Mean concat ROUGE-2 F1.
    pub concat_r2: f64,
    /// Mean concat ROUGE-S\* F1.
    pub concat_rs: f64,
    /// Mean agreement ROUGE-1 / ROUGE-2 F1.
    pub agree_r1: f64,
    /// Mean agreement ROUGE-2 F1.
    pub agree_r2: f64,
    /// Mean align+ m:1 ROUGE-1 / ROUGE-2 F1.
    pub align_r1: f64,
    /// Mean align+ m:1 ROUGE-2 F1.
    pub align_r2: f64,
    /// Mean date-selection F1.
    pub date_f1: f64,
    /// Mean date coverage ±3 days.
    pub date_coverage3: f64,
    /// Mean generation seconds per timeline.
    pub seconds: f64,
}

impl From<&MethodMetrics> for MethodReport {
    fn from(m: &MethodMetrics) -> Self {
        Self {
            method: m.name.clone(),
            units: m.units.len(),
            concat_r1: m.concat_r1(),
            concat_r2: m.concat_r2(),
            concat_rs: m.concat_rs(),
            agree_r1: m.agree_r1(),
            agree_r2: m.agree_r2(),
            align_r1: m.align_r1(),
            align_r2: m.align_r2(),
            date_f1: m.date_f1(),
            date_coverage3: m.date_coverage3(),
            seconds: m.seconds(),
        }
    }
}

impl ToJson for MethodReport {
    fn to_json(&self) -> Json {
        obj(vec![
            ("method", self.method.to_json()),
            ("units", self.units.to_json()),
            ("concat_r1", self.concat_r1.to_json()),
            ("concat_r2", self.concat_r2.to_json()),
            ("concat_rs", self.concat_rs.to_json()),
            ("agree_r1", self.agree_r1.to_json()),
            ("agree_r2", self.agree_r2.to_json()),
            ("align_r1", self.align_r1.to_json()),
            ("align_r2", self.align_r2.to_json()),
            ("date_f1", self.date_f1.to_json()),
            ("date_coverage3", self.date_coverage3.to_json()),
            ("seconds", self.seconds.to_json()),
        ])
    }
}

impl FromJson for MethodReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            method: String::from_json(v.field("method")?)?,
            units: usize::from_json(v.field("units")?)?,
            concat_r1: f64::from_json(v.field("concat_r1")?)?,
            concat_r2: f64::from_json(v.field("concat_r2")?)?,
            concat_rs: f64::from_json(v.field("concat_rs")?)?,
            agree_r1: f64::from_json(v.field("agree_r1")?)?,
            agree_r2: f64::from_json(v.field("agree_r2")?)?,
            align_r1: f64::from_json(v.field("align_r1")?)?,
            align_r2: f64::from_json(v.field("align_r2")?)?,
            date_f1: f64::from_json(v.field("date_f1")?)?,
            date_coverage3: f64::from_json(v.field("date_coverage3")?)?,
            seconds: f64::from_json(v.field("seconds")?)?,
        })
    }
}

/// A full experiment report: id, dataset, corpus scale, per-method rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Experiment id (e.g. `"table7"`).
    pub experiment: String,
    /// Dataset name (e.g. `"Timeline17"`).
    pub dataset: String,
    /// Corpus scale the run used.
    pub scale: f64,
    /// One row per method.
    pub methods: Vec<MethodReport>,
}

impl ExperimentReport {
    /// Assemble a report from method metrics.
    pub fn new(experiment: &str, dataset: &str, scale: f64, methods: &[MethodMetrics]) -> Self {
        Self {
            experiment: experiment.to_string(),
            dataset: dataset.to_string(),
            scale,
            methods: methods.iter().map(MethodReport::from).collect(),
        }
    }

    /// Write as pretty JSON (creates parent dirs).
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json().to_string_pretty())
    }

    /// Load a report back.
    pub fn read_json(path: &Path) -> io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        let value = Json::parse(&json).map_err(io::Error::other)?;
        Self::from_json(&value).map_err(io::Error::other)
    }
}

impl ToJson for ExperimentReport {
    fn to_json(&self) -> Json {
        obj(vec![
            ("experiment", self.experiment.to_json()),
            ("dataset", self.dataset.to_json()),
            ("scale", self.scale.to_json()),
            ("methods", self.methods.to_json()),
        ])
    }
}

impl FromJson for ExperimentReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            experiment: String::from_json(v.field("experiment")?)?,
            dataset: String::from_json(v.field("dataset")?)?,
            scale: f64::from_json(v.field("scale")?)?,
            methods: Vec::from_json(v.field("methods")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::UnitMetrics;

    fn metrics(name: &str, r2: f64) -> MethodMetrics {
        MethodMetrics {
            name: name.to_string(),
            units: vec![
                UnitMetrics {
                    concat_r2: r2,
                    seconds: 1.0,
                    ..Default::default()
                },
                UnitMetrics {
                    concat_r2: r2 + 0.02,
                    seconds: 3.0,
                    ..Default::default()
                },
            ],
        }
    }

    #[test]
    fn conversion_aggregates_means() {
        let r = MethodReport::from(&metrics("WILSON", 0.10));
        assert_eq!(r.method, "WILSON");
        assert_eq!(r.units, 2);
        assert!((r.concat_r2 - 0.11).abs() < 1e-12);
        assert!((r.seconds - 2.0).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip() {
        let report = ExperimentReport::new(
            "table7",
            "Timeline17",
            0.1,
            &[metrics("WILSON", 0.1), metrics("ASMDS", 0.06)],
        );
        let path = std::env::temp_dir().join(format!("tl_report_{}.json", std::process::id()));
        report.write_json(&path).unwrap();
        let back = ExperimentReport::read_json(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(back.experiment, report.experiment);
        assert_eq!(back.methods.len(), report.methods.len());
        for (a, b) in back.methods.iter().zip(&report.methods) {
            assert_eq!(a.method, b.method);
            // JSON prints the shortest round-trippable decimal; compare
            // numerically, not bitwise.
            assert!((a.concat_r2 - b.concat_r2).abs() < 1e-9);
            assert!((a.seconds - b.seconds).abs() < 1e-9);
        }
    }

    #[test]
    fn read_missing_errors() {
        assert!(ExperimentReport::read_json(Path::new("/nope/x.json")).is_err());
    }
}
