//! Regenerates **Table 5** (Timeline17, concat ROUGE vs all baselines).
//!
//! Rows the paper itself measured (Random, and WILSON) and the unsupervised
//! systems reimplemented here (Chieu, MEAD, ETS) are run; supervised rows
//! (Tran, Regression, Wang, Liang) are quoted constants in the paper and
//! printed as `(reported)` for reference, exactly as the paper treats them.

use tl_baselines::{ChieuBaseline, EtsBaseline, MeadBaseline, RandomBaseline, RegressionBaseline};
use tl_corpus::generate;
use tl_corpus::TimelineGenerator;
use tl_eval::paper::TABLE5_TIMELINE17;
use tl_eval::protocol::{evaluate_methods, DatasetChoice};
use tl_eval::table::{f3, render};
use tl_wilson::{Wilson, WilsonConfig};

fn main() {
    let choice = DatasetChoice::Timeline17;
    let ds = choice.dataset();

    // The supervised Regression row is *trained* on a held-out seed of the
    // same profile (the paper's number comes from cross-validation on the
    // real data); everything else is unsupervised.
    let train = generate(&choice.config().with_seed(1017));
    let regression = RegressionBaseline::train(&train);
    let methods: Vec<Box<dyn TimelineGenerator>> = vec![
        Box::new(RandomBaseline::default()),
        Box::new(ChieuBaseline::default()),
        Box::new(MeadBaseline::default()),
        Box::new(EtsBaseline::default()),
        Box::new(regression),
        Box::new(Wilson::new(WilsonConfig::default())),
    ];

    let refs: Vec<&dyn TimelineGenerator> = methods.iter().map(Box::as_ref).collect();
    let results = evaluate_methods(&ds, &refs);

    let mut rows = Vec::new();
    for m in &results {
        let paper = TABLE5_TIMELINE17
            .iter()
            .find(|r| r.method.starts_with(m.name.split(' ').next().unwrap_or("")));
        rows.push(vec![
            format!("{} (measured)", m.name),
            f3(m.concat_r1()),
            f3(m.concat_r2()),
            f3(m.concat_rs()),
            paper.map_or("-".into(), |p| f3(p.r1)),
            paper.map_or("-".into(), |p| f3(p.r2)),
            paper.map_or("-".into(), |p| f3(p.rs)),
        ]);
    }
    for p in TABLE5_TIMELINE17.iter().filter(|r| r.quoted) {
        rows.push(vec![
            format!("{} (reported only)", p.method),
            "-".into(),
            "-".into(),
            "-".into(),
            f3(p.r1),
            f3(p.r2),
            f3(p.rs),
        ]);
    }

    let out = render(
        "Table 5 (Timeline17): concat ROUGE vs baselines",
        &[
            "method",
            "R-1",
            "R-2",
            "R-S*",
            "paper R-1",
            "paper R-2",
            "paper R-S*",
        ],
        &rows,
    );
    print!("{out}");
    println!("\nShape to verify: WILSON > ETS/MEAD/Chieu > Random on R-1 and R-S*.");
}
