//! Regenerates **Figure 2** (running time vs corpus size): WILSON vs ASMDS
//! vs TLSConstraints on growing corpora. The paper's claim is the *shape*:
//! the submodular methods grow quadratically with the number of sentences
//! while WILSON is near-linear, opening a two-orders-of-magnitude gap.

use std::time::Instant;
use tl_baselines::{SubmodularConfig, TilseBaseline};
use tl_corpus::{dated_sentences, generate, SynthConfig, TimelineGenerator};
use tl_eval::table::render;
use tl_wilson::{Wilson, WilsonConfig};

fn main() {
    // Scales must clear the generator's minimum-articles floor (~128 docs
    // for the Timeline17 profile) or every point collapses to the same
    // corpus; these give ~8k to ~39k dated sentences.
    let scales = [0.1, 0.25, 0.4, 0.6, 0.85];
    let t = 20;
    let n = 2;
    let mut rows = Vec::new();
    println!("timing one topic per scale; seconds per timeline generation\n");
    for &scale in &scales {
        let ds = generate(&SynthConfig::timeline17().with_scale(scale));
        let topic = &ds.topics[0];
        let corpus = dated_sentences(&topic.articles, None);
        let size = corpus.len();
        eprintln!("  corpus size {size} (scale {scale}) ...");
        let time_of = |m: &dyn TimelineGenerator| {
            let start = Instant::now();
            let tl = m.generate(&corpus, &topic.query, t, n);
            let secs = start.elapsed().as_secs_f64();
            assert!(tl.num_dates() > 0);
            secs
        };
        // The faithful quadratic path keeps the O(n^2) similarity cost the
        // figure is about; the shared kernel would flatten the curve.
        let wilson = time_of(&Wilson::new(WilsonConfig::default()));
        let asmds = time_of(&TilseBaseline::new(
            SubmodularConfig::asmds().with_faithful_quadratic(true),
        ));
        let tls = time_of(&TilseBaseline::new(
            SubmodularConfig::tls_constraints().with_faithful_quadratic(true),
        ));
        rows.push(vec![
            size.to_string(),
            format!("{wilson:.3}"),
            format!("{asmds:.3}"),
            format!("{tls:.3}"),
            format!("{:.1}x", asmds / wilson.max(1e-9)),
        ]);
    }
    let out = render(
        "Figure 2: running time vs corpus size (seconds)",
        &[
            "#sentences",
            "WILSON",
            "ASMDS",
            "TLSCONSTRAINTS",
            "ASMDS/WILSON",
        ],
        &rows,
    );
    print!("{out}");

    // Growth-rate check: fit log-log slopes.
    let sizes: Vec<f64> = rows.iter().map(|r| r[0].parse::<f64>().unwrap()).collect();
    let slope = |col: usize| -> f64 {
        let xs: Vec<f64> = sizes.iter().map(|s| s.ln()).collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| r[col].parse::<f64>().unwrap().max(1e-6).ln())
            .collect();
        let n = xs.len() as f64;
        let (sx, sy): (f64, f64) = (xs.iter().sum(), ys.iter().sum());
        let sxy: f64 = xs.iter().zip(&ys).map(|(a, b)| a * b).sum();
        let sxx: f64 = xs.iter().map(|a| a * a).sum();
        (n * sxy - sx * sy) / (n * sxx - sx * sx)
    };
    println!(
        "\nlog-log growth exponents: WILSON {:.2}, ASMDS {:.2}, TLSCONSTRAINTS {:.2}",
        slope(1),
        slope(2),
        slope(3)
    );
    println!("Shape to verify: submodular exponents ~2 (quadratic), WILSON well below,");
    println!("and the gap widens with corpus size (paper: two orders of magnitude).");
}
