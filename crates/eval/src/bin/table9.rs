//! Regenerates **Table 9** (journalist evaluation) with the **simulated**
//! judging panel documented in DESIGN.md §2: the paper's two Washington
//! Post journalists are replaced by noisy fidelity+readability judges; the
//! protocol (10 sampled timelines, 3 systems, MRR and DCG over the final
//! ranking) is the paper's.

use tl_baselines::TilseBaseline;
use tl_corpus::{dated_sentences, TimelineGenerator};
use tl_eval::judge::{run_panel, JudgePanel, JudgeSample, JudgedEntry};
use tl_eval::paper::TABLE9;
use tl_eval::protocol::DatasetChoice;
use tl_eval::table::{f4, render};
use tl_wilson::{Wilson, WilsonConfig};

fn main() {
    // Sample 10 timelines across both datasets (the paper samples 10 of 41
    // from 6 topics).
    let t17 = DatasetChoice::Timeline17.dataset();
    let crisis = DatasetChoice::Crisis.dataset();

    let asmds = TilseBaseline::asmds();
    let tls = TilseBaseline::tls_constraints();
    let wilson = Wilson::new(WilsonConfig::default());

    type Entries = Vec<(tl_temporal::Date, Vec<String>)>;
    type Output = (String, Entries);
    let mut generated: Vec<(Vec<Output>, Entries)> = Vec::new();
    let mut sampled = 0usize;
    'outer: for ds in [&t17, &crisis] {
        for topic in &ds.topics {
            let corpus = dated_sentences(&topic.articles, None);
            let Some(gt) = topic.timelines.first() else {
                continue;
            };
            let t = gt.num_dates();
            let n = gt.target_sentences_per_date();
            eprintln!("  judging sample {} ({})", sampled + 1, topic.name);
            let outputs = vec![
                (
                    "ASMDS".to_string(),
                    asmds.generate(&corpus, &topic.query, t, n).entries,
                ),
                (
                    "TLSCONSTRAINTS".to_string(),
                    tls.generate(&corpus, &topic.query, t, n).entries,
                ),
                (
                    "WILSON (Ours)".to_string(),
                    wilson.generate(&corpus, &topic.query, t, n).entries,
                ),
            ];
            generated.push((outputs, gt.entries.clone()));
            sampled += 1;
            if sampled >= 10 {
                break 'outer;
            }
        }
    }

    let samples: Vec<JudgeSample<'_>> = generated
        .iter()
        .map(|(outputs, reference)| {
            (
                outputs
                    .iter()
                    .map(|(name, tl)| JudgedEntry {
                        name,
                        timeline: tl.as_slice(),
                    })
                    .collect(),
                reference.as_slice(),
            )
        })
        .collect();

    let outcomes = run_panel(&samples, &JudgePanel::default());
    let mut rows = Vec::new();
    for (o, p) in outcomes.iter().zip(TABLE9) {
        rows.push(vec![
            o.name.clone(),
            o.rank_counts[0].to_string(),
            o.rank_counts[1].to_string(),
            o.rank_counts[2].to_string(),
            f4(o.mrr),
            format!("{:.2}", p.mrr),
            format!("{:.2}", o.dcg),
            format!("{:.2}", p.dcg),
        ]);
    }
    let out = render(
        "Table 9: SIMULATED journalist evaluation (see DESIGN.md substitution)",
        &[
            "method",
            "1st",
            "2nd",
            "3rd",
            "MRR",
            "paper MRR",
            "DCG",
            "paper DCG",
        ],
        &rows,
    );
    print!("{out}");
    println!("\nShape to verify: WILSON attains the best (or tied-best) MRR/DCG.");
    println!("NOTE: judges are simulated; this regenerates the protocol, not the humans.");
}
