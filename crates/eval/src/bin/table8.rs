//! Regenerates **Table 8** (empirical upper bounds):
//!
//! * the *submodular-framework bound*: a supervised greedy oracle that sees
//!   ground-truth dates **and** ground-truth summaries and optimizes ROUGE
//!   F1 directly,
//! * the *two-stage bound*: WILSON's ordinary unsupervised daily summarizer
//!   run on the ground-truth dates (no access to ground-truth text).

use tl_corpus::dated_sentences;
use tl_eval::oracle::rouge_oracle_timeline;
use tl_eval::paper::TABLE8;
use tl_eval::protocol::DatasetChoice;
use tl_eval::table::{f4, render};
use tl_rouge::{TimelineRouge, TimelineRougeMode};
use tl_wilson::{Wilson, WilsonConfig};

fn main() {
    let mut rows = Vec::new();
    for (choice, paper_rows) in [
        (DatasetChoice::Timeline17, &TABLE8[0..2]),
        (DatasetChoice::Crisis, &TABLE8[2..4]),
    ] {
        let ds = choice.dataset();
        let wilson = Wilson::new(WilsonConfig::default());
        let mut rouge = TimelineRouge::new();
        let (mut oracle_r1, mut oracle_r2) = (0.0, 0.0);
        let (mut two_r1, mut two_r2) = (0.0, 0.0);
        let mut units = 0usize;
        for topic in &ds.topics {
            let corpus = dated_sentences(&topic.articles, None);
            for gt in &topic.timelines {
                let t = gt.num_dates();
                let n = gt.target_sentences_per_date();
                // Supervised oracle: only sentences on ground-truth dates
                // are candidates, and selection optimizes ROUGE against the
                // ground-truth text directly.
                let gt_dates = gt.dates();
                let on_dates: Vec<_> = corpus
                    .iter()
                    .filter(|s| gt_dates.contains(&s.date))
                    .cloned()
                    .collect();
                let ref_text: String = gt
                    .entries
                    .iter()
                    .flat_map(|(_, s)| s.iter().cloned())
                    .collect::<Vec<_>>()
                    .join(" ");
                let oracle_tl = rouge_oracle_timeline(&on_dates, &ref_text, t, n);
                let o1 = rouge
                    .rouge_n(
                        1,
                        TimelineRougeMode::Concat,
                        oracle_tl.as_slice(),
                        gt.as_slice(),
                    )
                    .f1;
                let o2 = rouge
                    .rouge_n(
                        2,
                        TimelineRougeMode::Concat,
                        oracle_tl.as_slice(),
                        gt.as_slice(),
                    )
                    .f1;
                // Two-stage bound: ground-truth dates, unsupervised summaries.
                let two_tl = wilson.generate_on_dates(&corpus, &gt_dates, n);
                let t1 = rouge
                    .rouge_n(
                        1,
                        TimelineRougeMode::Concat,
                        two_tl.as_slice(),
                        gt.as_slice(),
                    )
                    .f1;
                let t2 = rouge
                    .rouge_n(
                        2,
                        TimelineRougeMode::Concat,
                        two_tl.as_slice(),
                        gt.as_slice(),
                    )
                    .f1;
                oracle_r1 += o1;
                oracle_r2 += o2;
                two_r1 += t1;
                two_r2 += t2;
                units += 1;
            }
        }
        let k = units.max(1) as f64;
        rows.push(vec![
            format!("{} / submodular oracle", choice.name()),
            f4(oracle_r1 / k),
            f4(paper_rows[0].r1),
            f4(oracle_r2 / k),
            f4(paper_rows[0].r2),
        ]);
        rows.push(vec![
            format!("{} / gt-dates + daily summary", choice.name()),
            f4(two_r1 / k),
            f4(paper_rows[1].r1),
            f4(two_r2 / k),
            f4(paper_rows[1].r2),
        ]);
    }
    let out = render(
        "Table 8: empirical upper bounds",
        &["bound", "R-1", "(paper)", "R-2", "(paper)"],
        &rows,
    );
    print!("{out}");
    println!("\nShape to verify: the supervised oracle bound exceeds the two-stage");
    println!("bound on both datasets (the paper's point: the two-stage ceiling is");
    println!("lower, yet no existing system reaches even that).");
}
