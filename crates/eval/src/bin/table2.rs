//! Regenerates **Table 2** (edge-weight comparison): for each of W1–W4,
//! date-selection F1 plus concat ROUGE-1/2 of the full pipeline using that
//! edge weight with plain PageRank (the table isolates the weight choice;
//! recency adjustment enters later in Table 3).

use tl_corpus::TimelineGenerator;
use tl_eval::paper::{Table2Row, TABLE2_CRISIS, TABLE2_TIMELINE17};
use tl_eval::protocol::{evaluate_methods, DatasetChoice};
use tl_eval::table::{f4, render};
use tl_wilson::{EdgeWeight, Wilson, WilsonConfig};

fn run(choice: DatasetChoice, paper: &[Table2Row]) {
    let ds = choice.dataset();
    let weights = EdgeWeight::all();
    let methods: Vec<Wilson> = weights
        .iter()
        .map(|&w| Wilson::new(WilsonConfig::tran().with_edge_weight(w)))
        .collect();
    let refs: Vec<&dyn TimelineGenerator> = methods
        .iter()
        .map(|m| m as &dyn TimelineGenerator)
        .collect();
    let results = evaluate_methods(&ds, &refs);
    let mut rows = Vec::new();
    for ((w, p), m) in weights.into_iter().zip(paper).zip(&results) {
        rows.push(vec![
            w.label().to_string(),
            f4(m.date_f1()),
            f4(p.date_f1),
            f4(m.concat_r1()),
            f4(p.r1),
            f4(m.concat_r2()),
            f4(p.r2),
        ]);
    }
    let out = render(
        &format!("Table 2 ({}): edge weights W1-W4", choice.name()),
        &[
            "weight", "Date F1", "(paper)", "ROUGE-1", "(paper)", "ROUGE-2", "(paper)",
        ],
        &rows,
    );
    print!("{out}");
}

fn main() {
    run(DatasetChoice::Timeline17, TABLE2_TIMELINE17);
    run(DatasetChoice::Crisis, TABLE2_CRISIS);
    println!("\nPaper's takeaway to verify: all four weights perform comparably;");
    println!("W3 is adopted because it needs no query relevance computation.");
}
