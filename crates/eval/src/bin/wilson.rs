//! `wilson` — command-line timeline generation.
//!
//! ```text
//! wilson generate [--dataset timeline17|crisis|l3s:<path>] [--scale S]
//!                 [--topic N] [--dates T] [--sents N] [--query "..."]
//!                 [--variant full|uniform|tran|nopost]
//!                 [--format digest|plain|markdown] [--explain]
//! wilson stats    [--dataset ...] [--scale S]
//! ```
//!
//! Runs the complete pipeline: load or generate a corpus, pre-process into
//! dated sentences, run WILSON, render. `--dataset l3s:<path>` consumes the
//! original Timeline17/Crisis on-disk layout.

use std::collections::HashMap;
use std::process::exit;
use tl_corpus::{
    dataset_stats, dated_sentences, generate, loader::load_l3s, render, Dataset, SynthConfig,
    TimelineGenerator,
};
use tl_wilson::{explain_date_selection, Wilson, WilsonConfig};

const USAGE: &str = "\
wilson — fast news timeline summarization (WILSON, EDBT 2021)

USAGE:
    wilson generate [OPTIONS]     generate a timeline
    wilson stats    [OPTIONS]     dataset overview (Table 4 shape)

OPTIONS:
    --dataset <D>    timeline17 (default) | crisis | l3s:<path>
    --scale <S>      synthetic corpus scale (default 0.05)
    --topic <N>      topic index (default 0)
    --dates <T>      number of timeline dates (default: ground-truth count)
    --sents <N>      sentences per date (default: ground-truth average)
    --query <Q>      override the topic query (supports \"quoted phrases\")
    --variant <V>    full (default) | uniform | tran | nopost
    --format <F>     digest (default) | plain | markdown
    --explain        print per-date selection evidence instead of a timeline
    --help           this text
";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument {a:?}"));
        };
        if key == "help" || key == "explain" {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            return Err(format!("--{key} requires a value"));
        };
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn load_dataset(flags: &HashMap<String, String>) -> Result<Dataset, String> {
    let scale: f64 = flags
        .get("scale")
        .map(|s| s.parse().map_err(|_| format!("bad --scale {s:?}")))
        .transpose()?
        .unwrap_or(0.05);
    match flags
        .get("dataset")
        .map(String::as_str)
        .unwrap_or("timeline17")
    {
        "timeline17" => Ok(generate(&SynthConfig::timeline17().with_scale(scale))),
        "crisis" => Ok(generate(&SynthConfig::crisis().with_scale(scale))),
        other => {
            if let Some(path) = other.strip_prefix("l3s:") {
                let (ds, report) = load_l3s(std::path::Path::new(path), "l3s")
                    .map_err(|e| format!("loading {path}: {e}"))?;
                if report.skipped_docs + report.skipped_blocks > 0 {
                    eprintln!(
                        "note: skipped {} docs / {} timeline blocks while loading",
                        report.skipped_docs, report.skipped_blocks
                    );
                }
                Ok(ds)
            } else {
                Err(format!("unknown --dataset {other:?}"))
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        exit(2);
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            exit(2);
        }
    };
    if flags.contains_key("help") || command == "help" {
        print!("{USAGE}");
        return;
    }
    let dataset = match load_dataset(&flags) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
    };

    match command.as_str() {
        "stats" => {
            println!("{}", dataset_stats(&dataset));
        }
        "generate" => {
            let topic_idx: usize = flags.get("topic").and_then(|s| s.parse().ok()).unwrap_or(0);
            let Some(topic) = dataset.topics.get(topic_idx) else {
                eprintln!(
                    "error: topic {topic_idx} out of range (dataset has {})",
                    dataset.topics.len()
                );
                exit(1);
            };
            let gt = topic.timelines.first();
            let t: usize = flags
                .get("dates")
                .and_then(|s| s.parse().ok())
                .or_else(|| gt.map(|g| g.num_dates()))
                .unwrap_or(20);
            let n: usize = flags
                .get("sents")
                .and_then(|s| s.parse().ok())
                .or_else(|| gt.map(|g| g.target_sentences_per_date()))
                .unwrap_or(2);
            let query = flags
                .get("query")
                .cloned()
                .unwrap_or_else(|| topic.query.clone());
            let config = match flags.get("variant").map(String::as_str).unwrap_or("full") {
                "full" => WilsonConfig::default(),
                "uniform" => WilsonConfig::uniform(),
                "tran" => WilsonConfig::tran(),
                "nopost" => WilsonConfig::without_post(),
                other => {
                    eprintln!("error: unknown --variant {other:?}");
                    exit(2);
                }
            };
            let corpus = dated_sentences(&topic.articles, None);
            eprintln!(
                "topic {:?}: {} dated sentences, T = {t}, N = {n}",
                topic.name,
                corpus.len()
            );
            if flags.contains_key("explain") {
                for e in explain_date_selection(&corpus, &query, &config, t, 2) {
                    print!("{e}");
                }
                return;
            }
            let started = std::time::Instant::now();
            let timeline = Wilson::new(config).generate(&corpus, &query, t, n);
            eprintln!(
                "generated {} dates in {:.2?}\n",
                timeline.num_dates(),
                started.elapsed()
            );
            let out = match flags.get("format").map(String::as_str).unwrap_or("digest") {
                "digest" => render::to_digest(&timeline, 100),
                "plain" => render::to_plain(&timeline),
                "markdown" => render::to_markdown(&timeline, Some(&topic.name)),
                other => {
                    eprintln!("error: unknown --format {other:?}");
                    exit(2);
                }
            };
            print!("{out}");
        }
        other => {
            eprintln!("error: unknown command {other:?}\n");
            eprint!("{USAGE}");
            exit(2);
        }
    }
}
