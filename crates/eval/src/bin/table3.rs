//! Regenerates **Table 3** (date coverage): Uniform vs W3 vs W3+Recency on
//! coverage ±3 days, date F1, and concat ROUGE-1/2/S\*.

use tl_corpus::TimelineGenerator;
use tl_eval::paper::{Table3Row, TABLE3_CRISIS, TABLE3_TIMELINE17};
use tl_eval::protocol::{evaluate_methods, DatasetChoice};
use tl_eval::table::{f4, render};
use tl_wilson::{Wilson, WilsonConfig};

fn run(choice: DatasetChoice, paper: &[Table3Row]) {
    let ds = choice.dataset();
    let methods: [(Wilson, &Table3Row); 3] = [
        (Wilson::new(WilsonConfig::uniform()), &paper[0]),
        (Wilson::new(WilsonConfig::tran()), &paper[1]),
        (Wilson::new(WilsonConfig::default()), &paper[2]),
    ];
    let refs: Vec<&dyn TimelineGenerator> = methods
        .iter()
        .map(|(m, _)| m as &dyn TimelineGenerator)
        .collect();
    let results = evaluate_methods(&ds, &refs);
    let mut rows = Vec::new();
    for ((_, p), m) in methods.iter().zip(&results) {
        rows.push(vec![
            p.strategy.to_string(),
            f4(m.date_coverage3()),
            f4(p.coverage3),
            f4(m.date_f1()),
            f4(p.date_f1),
            f4(m.concat_r1()),
            f4(p.r1),
            f4(m.concat_r2()),
            f4(p.r2),
            f4(m.concat_rs()),
            f4(p.rs),
        ]);
    }
    let out = render(
        &format!("Table 3 ({}): date coverage", choice.name()),
        &[
            "selection",
            "Cov(±3)",
            "(paper)",
            "Date F1",
            "(paper)",
            "R-1",
            "(paper)",
            "R-2",
            "(paper)",
            "R-S*",
            "(paper)",
        ],
        &rows,
    );
    print!("{out}");
}

fn main() {
    run(DatasetChoice::Timeline17, TABLE3_TIMELINE17);
    run(DatasetChoice::Crisis, TABLE3_CRISIS);
    println!("\nPaper's takeaways to verify: Uniform covers the most dates but has the");
    println!("worst Date F1 and ROUGE; adding recency to W3 recovers coverage and");
    println!("yields the best summaries.");
}
