//! Regenerates the paper's **qualitative artifacts**:
//!
//! * **Table 10** — side-by-side daily summaries (ground truth vs TILSE's
//!   two variants vs WILSON) on the dates all four timelines share, with
//!   token-overlap-vs-ground-truth percentages standing in for the paper's
//!   colored highlighting,
//! * **Table 11** — a §5-style query-driven timeline from the real-time
//!   system (keywords + window → 10 dates), the Trump–Kim-summit demo.

use std::collections::HashSet;
use tl_baselines::TilseBaseline;
use tl_corpus::{dated_sentences, TimelineGenerator};
use tl_eval::protocol::DatasetChoice;
use tl_wilson::realtime::TimelineQuery;
use tl_wilson::{RealTimeSystem, Wilson, WilsonConfig};

/// Fraction of a summary's content words that appear in the reference
/// day's summary (the "red/blue overlap" of Table 10, quantified).
fn overlap(summary: &[String], reference: &[String]) -> f64 {
    let bag = |sents: &[String]| -> HashSet<String> {
        sents
            .iter()
            .flat_map(|s| s.split_whitespace())
            .map(|w| {
                w.trim_matches(|c: char| !c.is_alphanumeric())
                    .to_lowercase()
            })
            .filter(|w| w.len() > 3)
            .collect()
    };
    let sys = bag(summary);
    let rf = bag(reference);
    if sys.is_empty() {
        return 0.0;
    }
    sys.iter().filter(|w| rf.contains(*w)).count() as f64 / sys.len() as f64
}

fn main() {
    // --- Table 10 analog ---
    let ds = DatasetChoice::Timeline17.dataset();
    let topic = &ds.topics[0];
    let gt = &topic.timelines[0];
    let corpus = dated_sentences(&topic.articles, None);
    let (t, n) = (gt.num_dates(), gt.target_sentences_per_date());

    eprintln!("generating three machine timelines for {} ...", topic.name);
    let outputs = [
        (
            "TLSCONSTRAINTS",
            TilseBaseline::tls_constraints().generate(&corpus, &topic.query, t, n),
        ),
        (
            "ASMDS",
            TilseBaseline::asmds().generate(&corpus, &topic.query, t, n),
        ),
        (
            "WILSON",
            Wilson::new(WilsonConfig::default()).generate(&corpus, &topic.query, t, n),
        ),
    ];

    // Dates present in all four timelines (as Table 10 restricts itself to).
    let mut common: Vec<_> = gt.dates();
    for (_, tl) in &outputs {
        let dates: HashSet<_> = tl.dates().into_iter().collect();
        common.retain(|d| dates.contains(d));
    }
    println!(
        "== Table 10 analog: dates shared by ground truth and all systems ({}) ==",
        topic.name
    );
    println!("(percentages = content-word overlap with the ground-truth entry)\n");
    for date in common.iter().take(5) {
        let gt_sents = &gt
            .entries
            .iter()
            .find(|(d, _)| d == date)
            .expect("common date")
            .1;
        println!("--- {date} ---");
        println!("  GROUND TRUTH:");
        for s in gt_sents.iter().take(2) {
            println!("    {s}");
        }
        for (name, tl) in &outputs {
            let sents = &tl
                .entries
                .iter()
                .find(|(d, _)| d == date)
                .expect("common date")
                .1;
            println!(
                "  {name} (overlap {:.0}%):",
                overlap(sents, gt_sents) * 100.0
            );
            for s in sents.iter().take(2) {
                println!("    {s}");
            }
        }
        println!();
    }
    // Aggregate overlap per system over all common dates (the paper's
    // qualitative claim: WILSON aligns best with the handcrafted timeline).
    println!(
        "mean overlap with ground truth over {} shared dates:",
        common.len()
    );
    for (name, tl) in &outputs {
        let mut acc = 0.0;
        for date in &common {
            let gt_sents = &gt
                .entries
                .iter()
                .find(|(d, _)| d == date)
                .expect("common")
                .1;
            let sents = &tl
                .entries
                .iter()
                .find(|(d, _)| d == date)
                .expect("common")
                .1;
            acc += overlap(sents, gt_sents);
        }
        println!(
            "  {name:<16} {:.1}%",
            acc / common.len().max(1) as f64 * 100.0
        );
    }

    // --- Table 11 analog: query-driven real-time timeline ---
    println!("\n== Table 11 analog: real-time query-driven timeline ==");
    let system = RealTimeSystem::new(WilsonConfig::default());
    system.ingest_all(&topic.articles).expect("ingest");
    let cfg = tl_corpus::SynthConfig::timeline17();
    let tl = system.timeline(&TimelineQuery {
        keywords: topic.query.clone(),
        window: (
            cfg.start_date,
            cfg.start_date.plus_days(cfg.duration_days as i32),
        ),
        num_dates: 10,
        sents_per_date: 1,
        fetch_limit: 3000,
    })
    .expect("query");
    println!(
        "query {:?} over {} indexed sentences -> {} dates:\n",
        topic.query,
        system.num_sentences(),
        tl.num_dates()
    );
    for (d, s) in &tl.entries {
        println!("{d}  {}", s.first().map(String::as_str).unwrap_or(""));
    }
}
