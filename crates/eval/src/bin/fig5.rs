//! Regenerates **Figure 5** (Crisis): concat ROUGE-2 F1 as the number of
//! sentences per date grows from 1 to 10, with and without post-processing.
//!
//! Shape from the paper: both curves fall as summaries get longer (F1
//! dilution), and the post-processed curve stays above the raw one once
//! summaries are long enough for cross-date redundancy to appear.

use tl_corpus::{dated_sentences, TimelineGenerator};
use tl_eval::protocol::DatasetChoice;
use tl_eval::table::render;
use tl_rouge::{TimelineRouge, TimelineRougeMode};
use tl_wilson::{Wilson, WilsonConfig};

fn main() {
    let ds = DatasetChoice::Crisis.dataset();
    let with_post = Wilson::new(WilsonConfig::default());
    let without_post = Wilson::new(WilsonConfig::without_post());
    let mut rouge = TimelineRouge::new();

    let mut rows = Vec::new();
    for n in 1..=10usize {
        eprintln!("  sweeping N = {n} ...");
        let mut f_with = 0.0;
        let mut f_without = 0.0;
        let mut k = 0.0;
        for topic in &ds.topics {
            let corpus = dated_sentences(&topic.articles, None);
            for gt in &topic.timelines {
                let t = gt.num_dates();
                let a = with_post.generate(&corpus, &topic.query, t, n);
                let b = without_post.generate(&corpus, &topic.query, t, n);
                f_with += rouge
                    .rouge_n(2, TimelineRougeMode::Concat, a.as_slice(), gt.as_slice())
                    .f1;
                f_without += rouge
                    .rouge_n(2, TimelineRougeMode::Concat, b.as_slice(), gt.as_slice())
                    .f1;
                k += 1.0;
            }
        }
        rows.push(vec![
            n.to_string(),
            format!("{:.4}", f_with / k),
            format!("{:.4}", f_without / k),
        ]);
    }
    let out = render(
        "Figure 5 (Crisis): concat ROUGE-2 F1 vs sentences per date",
        &["N", "WILSON (post)", "WILSON w/o post"],
        &rows,
    );
    print!("{out}");
    println!("\nShape to verify: scores decline as N grows (longer summaries dilute");
    println!("F1); post-processing matches or beats the raw variant at larger N.");
}
