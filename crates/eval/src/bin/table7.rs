//! Regenerates **Table 7** (TILSE comparison + WILSON ablations): concat /
//! agreement / align ROUGE-1/2, date F1, seconds per timeline, plus the
//! approximate-randomization significance test of WILSON over ASMDS (★) and
//! TLSConstraints (†) at p = 0.05, exactly as the paper's footnote defines.

use tl_baselines::TilseBaseline;
use tl_corpus::TimelineGenerator;
use tl_eval::paper::{Table7Row, TABLE7_CRISIS, TABLE7_TIMELINE17};
use tl_eval::protocol::{evaluate_methods, DatasetChoice, MethodMetrics, UnitMetrics};
use tl_eval::table::{f4, render, secs};
use tl_rouge::approximate_randomization;
use tl_wilson::{Wilson, WilsonConfig};

fn significance_markers(
    wilson: &MethodMetrics,
    asmds: &MethodMetrics,
    tls: &MethodMetrics,
    metric: fn(&UnitMetrics) -> f64,
) -> String {
    let w = wilson.series(metric);
    let star = approximate_randomization(&w, &asmds.series(metric), 2000, 42).significant_at(0.05);
    let dagger = approximate_randomization(&w, &tls.series(metric), 2000, 43).significant_at(0.05);
    format!(
        "{}{}",
        if star { "*" } else { "" },
        if dagger { "+" } else { "" }
    )
}

fn run(choice: DatasetChoice, paper: &[Table7Row]) {
    let ds = choice.dataset();
    let methods: Vec<Box<dyn TimelineGenerator>> = vec![
        Box::new(TilseBaseline::asmds()),
        Box::new(TilseBaseline::tls_constraints()),
        Box::new(Wilson::new(WilsonConfig::uniform())),
        Box::new(Wilson::new(WilsonConfig::tran())),
        Box::new(Wilson::new(WilsonConfig::without_post())),
        Box::new(Wilson::new(WilsonConfig::default())),
    ];
    eprintln!(
        "  running {} systems on {} (shared per-topic tokenization, parallel units) ...",
        methods.len(),
        choice.name()
    );
    let refs: Vec<&dyn TimelineGenerator> = methods.iter().map(Box::as_ref).collect();
    let results: Vec<MethodMetrics> = evaluate_methods(&ds, &refs);

    let mut rows = Vec::new();
    for (m, p) in results.iter().zip(paper) {
        rows.push(vec![
            m.name.clone(),
            f4(m.concat_r1()),
            f4(m.concat_r2()),
            f4(m.agree_r1()),
            f4(m.agree_r2()),
            f4(m.align_r1()),
            f4(m.align_r2()),
            f4(m.date_f1()),
            secs(m.seconds()),
            format!(
                "{:.4}/{:.4}/{:.4} @ {}s",
                p.concat_r2, p.agree_r2, p.align_r2, p.seconds
            ),
        ]);
    }
    let out = render(
        &format!(
            "Table 7 ({}): TILSE comparison + ablations (paper col = concat/agree/align R2 @ sec)",
            choice.name()
        ),
        &[
            "model", "cat R1", "cat R2", "agr R1", "agr R2", "aln R1", "aln R2", "Date F1",
            "sec/tl", "paper",
        ],
        &rows,
    );
    print!("{out}");

    // Significance of WILSON over the two TILSE variants, as in the paper
    // (our ★ prints as '*', † as '+').
    let wilson = &results[5];
    let asmds = &results[0];
    let tls = &results[1];
    println!("significance of WILSON (p<0.05, approximate randomization, 2000 trials):");
    for (label, metric) in [
        (
            "concat R2",
            (|u: &UnitMetrics| u.concat_r2) as fn(&UnitMetrics) -> f64,
        ),
        ("agreement R2", |u: &UnitMetrics| u.agree_r2),
        ("align R2", |u: &UnitMetrics| u.align_r2),
    ] {
        println!(
            "  {label}: {} (vs ASMDS '*', vs TLSCONSTRAINTS '+')",
            significance_markers(wilson, asmds, tls, metric)
        );
    }
    // Speed ratio headline.
    let ratio_a = asmds.seconds() / wilson.seconds().max(1e-9);
    let ratio_t = tls.seconds() / wilson.seconds().max(1e-9);
    println!(
        "speedup vs ASMDS: {ratio_a:.0}x, vs TLSCONSTRAINTS: {ratio_t:.0}x (paper: ~45-135x at full scale)"
    );
}

fn main() {
    run(DatasetChoice::Timeline17, TABLE7_TIMELINE17);
    run(DatasetChoice::Crisis, TABLE7_CRISIS);
    println!("\nShape to verify: WILSON beats both TILSE variants on every ROUGE");
    println!("metric; uniform < Tran < w/o Post <= WILSON; WILSON orders of");
    println!("magnitude faster than TILSE.");
}
