//! Regenerates **Figure 6** (automatic date compression): Mean Absolute
//! Percentage Error of the predicted number of timeline dates, comparing
//! the Affinity-Propagation predictor (§3.2.3) with fixed compression
//! rates of the corpus date count.

use tl_corpus::dated_sentences;
use tl_eval::protocol::DatasetChoice;
use tl_eval::table::render;
use tl_wilson::autocompress::{predict_num_dates, AutoCompressConfig};

fn main() {
    let mut rows = Vec::new();
    for choice in [DatasetChoice::Timeline17, DatasetChoice::Crisis] {
        let ds = choice.dataset();
        let mut ape_auto = Vec::new();
        let mut ape_fixed: Vec<Vec<f64>> = vec![Vec::new(); 5]; // 10%..50%
        let rates = [0.1, 0.2, 0.3, 0.4, 0.5];
        for topic in &ds.topics {
            let corpus = dated_sentences(&topic.articles, None);
            let mut all_dates: Vec<_> = corpus.iter().map(|s| s.date).collect();
            all_dates.sort_unstable();
            all_dates.dedup();
            let predicted = predict_num_dates(&corpus, &AutoCompressConfig::default()) as f64;
            eprintln!(
                "  {}: {} corpus dates, AP predicts {predicted}",
                topic.name,
                all_dates.len()
            );
            for gt in &topic.timelines {
                let truth = gt.num_dates() as f64;
                ape_auto.push((predicted - truth).abs() / truth);
                for (i, r) in rates.iter().enumerate() {
                    let fixed = (all_dates.len() as f64 * r).round().max(1.0);
                    ape_fixed[i].push((fixed - truth).abs() / truth);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64 * 100.0;
        rows.push(vec![
            choice.name().to_string(),
            format!("{:.1}%", mean(&ape_auto)),
            format!("{:.1}%", mean(&ape_fixed[0])),
            format!("{:.1}%", mean(&ape_fixed[1])),
            format!("{:.1}%", mean(&ape_fixed[2])),
            format!("{:.1}%", mean(&ape_fixed[3])),
            format!("{:.1}%", mean(&ape_fixed[4])),
        ]);
    }
    let out = render(
        "Figure 6: MAPE of predicted #dates (auto AP clustering vs fixed rates)",
        &["dataset", "auto (AP)", "10%", "20%", "30%", "40%", "50%"],
        &rows,
    );
    print!("{out}");
    println!("\nShape to verify: the AP predictor's MAPE is competitive with the best");
    println!("fixed rate on both datasets without knowing the rate in advance");
    println!("(the fixed-rate optimum differs per dataset — that is the paper's point).");
}
