//! Runs every table/figure experiment binary, teeing each output to
//! `results/<id>.txt`. Child processes launch concurrently (bounded by the
//! core count via `tl_support::par`), but results are reported in the fixed
//! `ALL` order so the console transcript is deterministic.
//!
//! ```text
//! cargo run --release -p tl-eval --bin run_all          # everything
//! cargo run --release -p tl-eval --bin run_all -- fast  # skip the slow ones
//! ```
//!
//! `fast` skips `table7`, `fig2`, `fig5` and `table9` (the ones that run
//! the quadratic TILSE baseline or long sweeps).

use std::fs;
use std::path::PathBuf;
use std::process::Command;

const ALL: &[&str] = &[
    "table4",
    "table2",
    "table3",
    "table5",
    "table6",
    "table8",
    "fig4",
    "fig6",
    "case_study",
    "table7",
    "fig2",
    "fig5",
    "table9",
];
const SLOW: &[&str] = &["table7", "fig2", "fig5", "table9"];

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    let exe_dir: PathBuf = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("exe has a directory")
        .to_path_buf();
    let results = PathBuf::from("results");
    fs::create_dir_all(&results).expect("create results dir");

    let to_run: Vec<&str> = ALL
        .iter()
        .copied()
        .filter(|name| {
            if fast && SLOW.contains(name) {
                println!("skipping {name} (fast mode)");
                false
            } else {
                true
            }
        })
        .collect();

    enum Outcome {
        Ok { secs: f64, stdout: Vec<u8> },
        Failed(String),
    }

    // Launch the experiment binaries concurrently; `par_map` preserves input
    // order, so reporting below replays the serial transcript exactly.
    let outcomes: Vec<Outcome> = tl_support::par::par_map(&to_run, |&name| {
        let bin = exe_dir.join(name);
        if !bin.exists() {
            return Outcome::Failed(format!(
                "binary {} missing — build with --bins first",
                bin.display()
            ));
        }
        let started = std::time::Instant::now();
        match Command::new(&bin).output() {
            Ok(out) if out.status.success() => Outcome::Ok {
                secs: started.elapsed().as_secs_f64(),
                stdout: out.stdout,
            },
            Ok(out) => Outcome::Failed(format!(
                "FAILED (status {:?}):\n{}",
                out.status.code(),
                String::from_utf8_lossy(&out.stderr)
            )),
            Err(e) => Outcome::Failed(format!("FAILED to launch: {e}")),
        }
    });

    let mut failures = Vec::new();
    for (&name, outcome) in to_run.iter().zip(&outcomes) {
        println!("=== {name} ===");
        match outcome {
            Outcome::Ok { secs, stdout } => {
                fs::write(results.join(format!("{name}.txt")), stdout)
                    .expect("write result file");
                println!(
                    "    ok in {secs:.1}s -> results/{name}.txt ({} bytes)",
                    stdout.len()
                );
            }
            Outcome::Failed(msg) => {
                eprintln!("    {msg}");
                failures.push(name);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed; outputs in results/");
    } else {
        eprintln!("\nexperiments failed: {failures:?}");
        std::process::exit(1);
    }
}
