//! Runs every table/figure experiment binary in sequence, teeing each
//! output to `results/<id>.txt`.
//!
//! ```text
//! cargo run --release -p tl-eval --bin run_all          # everything
//! cargo run --release -p tl-eval --bin run_all -- fast  # skip the slow ones
//! ```
//!
//! `fast` skips `table7`, `fig2`, `fig5` and `table9` (the ones that run
//! the quadratic TILSE baseline or long sweeps).

use std::fs;
use std::path::PathBuf;
use std::process::Command;

const ALL: &[&str] = &[
    "table4",
    "table2",
    "table3",
    "table5",
    "table6",
    "table8",
    "fig4",
    "fig6",
    "case_study",
    "table7",
    "fig2",
    "fig5",
    "table9",
];
const SLOW: &[&str] = &["table7", "fig2", "fig5", "table9"];

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    let exe_dir: PathBuf = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("exe has a directory")
        .to_path_buf();
    let results = PathBuf::from("results");
    fs::create_dir_all(&results).expect("create results dir");

    let mut failures = Vec::new();
    for &name in ALL {
        if fast && SLOW.contains(&name) {
            println!("skipping {name} (fast mode)");
            continue;
        }
        let bin = exe_dir.join(name);
        if !bin.exists() {
            eprintln!("binary {} missing — build with --bins first", bin.display());
            failures.push(name);
            continue;
        }
        println!("=== running {name} ===");
        let started = std::time::Instant::now();
        match Command::new(&bin).output() {
            Ok(out) if out.status.success() => {
                fs::write(results.join(format!("{name}.txt")), &out.stdout)
                    .expect("write result file");
                println!(
                    "    ok in {:.1?} -> results/{name}.txt ({} bytes)",
                    started.elapsed(),
                    out.stdout.len()
                );
            }
            Ok(out) => {
                eprintln!(
                    "    FAILED (status {:?}):\n{}",
                    out.status.code(),
                    String::from_utf8_lossy(&out.stderr)
                );
                failures.push(name);
            }
            Err(e) => {
                eprintln!("    FAILED to launch: {e}");
                failures.push(name);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed; outputs in results/");
    } else {
        eprintln!("\nexperiments failed: {failures:?}");
        std::process::exit(1);
    }
}
