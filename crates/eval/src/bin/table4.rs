//! Regenerates **Table 4** (dataset overview): topics, timelines, average
//! docs / sentences / duration per timeline, paper vs. synthetic.
//!
//! The synthetic generator is calibrated to the paper's full-scale numbers;
//! at `TL_SCALE < 1` the doc and sentence counts shrink proportionally
//! (duration and timeline counts do not).

use tl_corpus::dataset_stats;
use tl_eval::paper::TABLE4;
use tl_eval::protocol::DatasetChoice;
use tl_eval::table::{render, secs};

fn main() {
    let mut rows = Vec::new();
    for (choice, paper) in [
        (DatasetChoice::Timeline17, &TABLE4[0]),
        (DatasetChoice::Crisis, &TABLE4[1]),
    ] {
        let ds = choice.dataset();
        let s = dataset_stats(&ds);
        let scale = tl_eval::protocol::resolve_scale(choice);
        rows.push(vec![
            format!("{} (paper, scale 1.0)", paper.dataset),
            paper.topics.to_string(),
            paper.timelines.to_string(),
            format!("{:.0}", paper.docs),
            format!("{:.0}", paper.sents),
            format!("{:.0}", paper.duration),
        ]);
        rows.push(vec![
            format!("{} (synthetic, scale {})", s.name, scale),
            s.num_topics.to_string(),
            s.num_timelines.to_string(),
            format!("{:.0}", s.avg_docs),
            format!("{:.0}", s.avg_sents),
            secs(s.avg_duration_days),
        ]);
        // Scale-normalized docs/sents for direct comparability.
        rows.push(vec![
            format!("{} (synthetic / scale)", s.name),
            "-".into(),
            "-".into(),
            format!("{:.0}", s.avg_docs / scale),
            format!("{:.0}", s.avg_sents / scale),
            "-".into(),
        ]);
    }
    let out = render(
        "Table 4: dataset overview (paper vs synthetic substitute)",
        &[
            "dataset",
            "topics",
            "timelines",
            "avg docs",
            "avg sents",
            "avg duration (d)",
        ],
        &rows,
    );
    print!("{out}");
}
