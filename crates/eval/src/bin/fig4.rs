//! Regenerates **Figure 4** (CDF of selected-date offsets from the corpus
//! start): ground truth vs plain PageRank (Tran) vs TILSE vs WILSON.
//!
//! The paper's observation: plain PageRank and TILSE skew old (their CDFs
//! rise early), the ground truth is close to uniform, and the recency
//! adjustment moves WILSON's distribution toward it.

use tl_baselines::TilseBaseline;
use tl_corpus::{dated_sentences, TimelineGenerator};
use tl_eval::protocol::DatasetChoice;
use tl_eval::table::render;
use tl_temporal::Date;
use tl_wilson::{uniformity, Wilson, WilsonConfig};

/// Offsets (days since corpus start) of a date set, normalized to [0, 1].
fn normalized_offsets(dates: &[Date], start: Date, span: f64) -> Vec<f64> {
    let mut v: Vec<f64> = dates
        .iter()
        .map(|d| d.diff_days(start) as f64 / span)
        .collect();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v
}

/// CDF value at the given quantile grid points.
fn cdf_at(offsets: &[f64], grid: &[f64]) -> Vec<f64> {
    grid.iter()
        .map(|&g| offsets.iter().filter(|&&x| x <= g).count() as f64 / offsets.len().max(1) as f64)
        .collect()
}

fn main() {
    let choice = DatasetChoice::Timeline17;
    let ds = choice.dataset();
    let grid: Vec<f64> = (1..=10).map(|i| i as f64 / 10.0).collect();

    let mut gt_all = Vec::new();
    let mut tran_all = Vec::new();
    let mut tilse_all = Vec::new();
    let mut wilson_all = Vec::new();

    let tran = Wilson::new(WilsonConfig::tran());
    let wilson = Wilson::new(WilsonConfig::default());
    let tilse = TilseBaseline::tls_constraints();

    for topic in &ds.topics {
        let corpus = dated_sentences(&topic.articles, None);
        let Some(start) = corpus.iter().map(|s| s.date).min() else {
            continue;
        };
        let Some(end) = corpus.iter().map(|s| s.date).max() else {
            continue;
        };
        let span = end.diff_days(start).max(1) as f64;
        for gt in &topic.timelines {
            let t = gt.num_dates();
            gt_all.extend(normalized_offsets(&gt.dates(), start, span));
            tran_all.extend(normalized_offsets(
                &tran.select_dates(&corpus, &topic.query, t),
                start,
                span,
            ));
            wilson_all.extend(normalized_offsets(
                &wilson.select_dates(&corpus, &topic.query, t),
                start,
                span,
            ));
            let tl = tilse.generate(&corpus, &topic.query, t, 1);
            tilse_all.extend(normalized_offsets(&tl.dates(), start, span));
        }
    }
    gt_all.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    tran_all.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    tilse_all.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    wilson_all.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    let rows: Vec<Vec<String>> = grid
        .iter()
        .enumerate()
        .map(|(i, &g)| {
            vec![
                format!("{g:.1}"),
                format!("{:.3}", cdf_at(&gt_all, &grid)[i]),
                format!("{:.3}", cdf_at(&tran_all, &grid)[i]),
                format!("{:.3}", cdf_at(&tilse_all, &grid)[i]),
                format!("{:.3}", cdf_at(&wilson_all, &grid)[i]),
            ]
        })
        .collect();
    let out = render(
        "Figure 4 (Timeline17): CDF of selected-date offsets (fraction of corpus span)",
        &["offset", "ground truth", "Tran (W3 PR)", "TILSE", "WILSON"],
        &rows,
    );
    print!("{out}");

    // Early-mass summary: CDF at 30% of the span.
    let at30 = |v: &[f64]| v.iter().filter(|&&x| x <= 0.3).count() as f64 / v.len().max(1) as f64;
    println!("\nmass in the first 30% of the span:");
    println!("  ground truth {:.3}", at30(&gt_all));
    println!("  Tran         {:.3}", at30(&tran_all));
    println!("  TILSE        {:.3}", at30(&tilse_all));
    println!("  WILSON       {:.3}", at30(&wilson_all));
    println!("\nShape to verify: Tran/TILSE put more mass early (old-date skew);");
    println!("WILSON's recency adjustment tracks the ground truth more closely.");

    // Uniformity sanity (Definition 3), averaged per timeline.
    let t17 = DatasetChoice::Timeline17.dataset();
    let mut sig_tran = 0.0;
    let mut sig_wilson = 0.0;
    let mut k = 0.0;
    for topic in &t17.topics {
        let corpus = dated_sentences(&topic.articles, None);
        for gt in &topic.timelines {
            let t = gt.num_dates();
            sig_tran += uniformity(&tran.select_dates(&corpus, &topic.query, t));
            sig_wilson += uniformity(&wilson.select_dates(&corpus, &topic.query, t));
            k += 1.0;
        }
    }
    println!(
        "\nmean uniformity sigma (Def. 3, lower = more uniform): Tran {:.2}, WILSON {:.2}",
        sig_tran / k,
        sig_wilson / k
    );
}
