//! Fixed-width table printing for the experiment binaries.

/// Print a titled table: header row + data rows, columns padded to the
/// widest cell. Returns the rendered string (also printed to stdout by the
/// binaries so output can be teed into EXPERIMENTS.md).
pub fn render(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row width mismatch in table '{title}'");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format a float to 4 decimals (the paper's table precision).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Format a float to 3 decimals (Tables 5/6 precision).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format seconds to 2 decimals.
pub fn secs(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let s = render(
            "demo",
            &["method", "r1"],
            &[
                vec!["WILSON".into(), "0.4075".into()],
                vec!["ASMDS".into(), "0.3452".into()],
            ],
        );
        assert!(s.contains("== demo =="));
        assert!(s.contains("WILSON  0.4075"));
        assert!(s.contains("ASMDS   0.3452"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        render("bad", &["a", "b"], &[vec!["only one".into()]]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f4(0.12345), "0.1235");
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(secs(1.239), "1.24");
    }
}
