//! Affinity Propagation clustering (Frey & Dueck, *Science* 2007).
//!
//! AP exchanges two message matrices over a similarity matrix `S`:
//!
//! * responsibility `r(i,k)`: how well-suited point `k` is to be the
//!   exemplar of `i`, relative to other candidates —
//!   `r(i,k) = s(i,k) − max_{k'≠k} [a(i,k') + s(i,k')]`,
//! * availability `a(i,k)`: how appropriate it is for `i` to choose `k` —
//!   `a(i,k) = min(0, r(k,k) + Σ_{i'∉{i,k}} max(0, r(i',k)))` and
//!   `a(k,k) = Σ_{i'≠k} max(0, r(i',k))`.
//!
//! Exemplars are points with `r(k,k) + a(k,k) > 0`; every point is assigned
//! to its best exemplar. The self-similarity ("preference") controls the
//! number of clusters — the paper's §3.2.3 uses the default (median
//! similarity) and takes the resulting cluster count as the timeline's date
//! count.

/// Configuration for Affinity Propagation.
#[derive(Debug, Clone, Copy)]
pub struct AffinityPropagationConfig {
    /// Message damping in `[0.5, 1)`; scikit-learn default 0.5.
    pub damping: f64,
    /// Maximum iterations.
    pub max_iter: usize,
    /// Stop after this many iterations without exemplar-set change.
    pub convergence_iter: usize,
    /// Self-similarity; `None` = median of off-diagonal similarities.
    pub preference: Option<f64>,
}

impl Default for AffinityPropagationConfig {
    fn default() -> Self {
        Self {
            damping: 0.5,
            max_iter: 200,
            convergence_iter: 15,
            preference: None,
        }
    }
}

/// Clustering outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterResult {
    /// Exemplar index per point.
    pub assignments: Vec<usize>,
    /// Distinct exemplar indices (sorted).
    pub exemplars: Vec<usize>,
    /// Whether the message loop converged before `max_iter`.
    pub converged: bool,
}

impl ClusterResult {
    /// Number of clusters found.
    pub fn num_clusters(&self) -> usize {
        self.exemplars.len()
    }
}

/// Run Affinity Propagation on a dense similarity matrix (row-major,
/// `n × n`). Higher `s[i][k]` = more similar.
pub fn affinity_propagation(
    similarity: &[Vec<f64>],
    config: &AffinityPropagationConfig,
) -> ClusterResult {
    let n = similarity.len();
    if n == 0 {
        return ClusterResult {
            assignments: Vec::new(),
            exemplars: Vec::new(),
            converged: true,
        };
    }
    for row in similarity {
        assert_eq!(row.len(), n, "similarity matrix must be square");
    }
    assert!(
        (0.5..1.0).contains(&config.damping),
        "damping must be in [0.5, 1)"
    );
    if n == 1 {
        return ClusterResult {
            assignments: vec![0],
            exemplars: vec![0],
            converged: true,
        };
    }

    // Working copy with preferences on the diagonal.
    let pref = config
        .preference
        .unwrap_or_else(|| median_off_diagonal(similarity));
    let mut s: Vec<f64> = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            s[i * n + k] = if i == k { pref } else { similarity[i][k] };
        }
    }
    // Tiny deterministic jitter breaks exact symmetry ties (scikit-learn
    // adds random noise; we derive it from the indices to stay seedless).
    #[allow(clippy::needless_range_loop)] // i and k jointly form the jitter key
    for i in 0..n {
        for k in 0..n {
            let jitter = ((i * 2654435761 + k * 40503) % 1000) as f64 * 1e-12;
            s[i * n + k] += jitter;
        }
    }

    let damping = config.damping;
    let mut r = vec![0.0f64; n * n];
    let mut a = vec![0.0f64; n * n];
    let mut last_exemplars: Vec<usize> = Vec::new();
    let mut stable = 0usize;
    let mut converged = false;

    for _ in 0..config.max_iter {
        // --- responsibilities ---
        for i in 0..n {
            // Top-2 of a(i,k) + s(i,k) over k.
            let (mut best, mut second, mut best_k) = (f64::NEG_INFINITY, f64::NEG_INFINITY, 0);
            for k in 0..n {
                let v = a[i * n + k] + s[i * n + k];
                if v > best {
                    second = best;
                    best = v;
                    best_k = k;
                } else if v > second {
                    second = v;
                }
            }
            for k in 0..n {
                let cutoff = if k == best_k { second } else { best };
                let new_r = s[i * n + k] - cutoff;
                r[i * n + k] = damping * r[i * n + k] + (1.0 - damping) * new_r;
            }
        }
        // --- availabilities ---
        for k in 0..n {
            let mut pos_sum = 0.0;
            for i in 0..n {
                if i != k {
                    pos_sum += r[i * n + k].max(0.0);
                }
            }
            let rkk = r[k * n + k];
            for i in 0..n {
                let new_a = if i == k {
                    pos_sum
                } else {
                    let adjusted = rkk + pos_sum - r[i * n + k].max(0.0);
                    adjusted.min(0.0)
                };
                a[i * n + k] = damping * a[i * n + k] + (1.0 - damping) * new_a;
            }
        }
        // --- exemplar check ---
        let exemplars: Vec<usize> = (0..n)
            .filter(|&k| r[k * n + k] + a[k * n + k] > 0.0)
            .collect();
        if exemplars == last_exemplars && !exemplars.is_empty() {
            stable += 1;
            if stable >= config.convergence_iter {
                converged = true;
                break;
            }
        } else {
            stable = 0;
            last_exemplars = exemplars;
        }
    }

    let mut exemplars = last_exemplars;
    if exemplars.is_empty() {
        // Degenerate run (all messages tied): fall back to the single best
        // self-score so callers always get a valid clustering.
        let best = (0..n)
            .max_by(|&x, &y| {
                (r[x * n + x] + a[x * n + x])
                    .partial_cmp(&(r[y * n + y] + a[y * n + y]))
                    .expect("finite messages")
            })
            .expect("n > 0");
        exemplars = vec![best];
    }

    // Assign each point to its most similar exemplar; exemplars to
    // themselves.
    let assignments: Vec<usize> = (0..n)
        .map(|i| {
            if exemplars.contains(&i) {
                i
            } else {
                *exemplars
                    .iter()
                    .max_by(|&&x, &&y| {
                        s[i * n + x]
                            .partial_cmp(&s[i * n + y])
                            .expect("finite similarities")
                    })
                    .expect("non-empty exemplars")
            }
        })
        .collect();

    ClusterResult {
        assignments,
        exemplars,
        converged,
    }
}

fn median_off_diagonal(s: &[Vec<f64>]) -> f64 {
    let n = s.len();
    let mut vals: Vec<f64> = Vec::with_capacity(n * (n - 1));
    #[allow(clippy::needless_range_loop)] // i and k jointly index the matrix
    for i in 0..n {
        for k in 0..n {
            if i != k {
                vals.push(s[i][k]);
            }
        }
    }
    if vals.is_empty() {
        return 0.0;
    }
    vals.sort_by(|a, b| a.partial_cmp(b).expect("finite similarities"));
    let m = vals.len();
    if m % 2 == 1 {
        vals[m / 2]
    } else {
        (vals[m / 2 - 1] + vals[m / 2]) / 2.0
    }
}

/// Convenience: cluster points given a similarity function.
pub fn cluster_by<T, F>(items: &[T], sim: F, config: &AffinityPropagationConfig) -> ClusterResult
where
    F: Fn(&T, &T) -> f64,
{
    let n = items.len();
    let matrix: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|k| sim(&items[i], &items[k])).collect())
        .collect();
    affinity_propagation(&matrix, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Similarity = negative squared euclidean distance (Frey & Dueck's
    /// choice for point data).
    fn neg_sq_dist(points: &[(f64, f64)]) -> Vec<Vec<f64>> {
        points
            .iter()
            .map(|&(x1, y1)| {
                points
                    .iter()
                    .map(|&(x2, y2)| -((x1 - x2).powi(2) + (y1 - y2).powi(2)))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn empty_and_singleton() {
        let r = affinity_propagation(&[], &AffinityPropagationConfig::default());
        assert_eq!(r.num_clusters(), 0);
        let r = affinity_propagation(&[vec![0.0]], &AffinityPropagationConfig::default());
        assert_eq!(r.num_clusters(), 1);
        assert_eq!(r.assignments, vec![0]);
    }

    #[test]
    fn two_well_separated_blobs() {
        let points = [
            (0.0, 0.0),
            (0.1, 0.0),
            (0.0, 0.1),
            (10.0, 10.0),
            (10.1, 10.0),
            (10.0, 10.1),
        ];
        let s = neg_sq_dist(&points);
        let r = affinity_propagation(&s, &AffinityPropagationConfig::default());
        assert_eq!(r.num_clusters(), 2, "{r:?}");
        // Points 0-2 share an exemplar; 3-5 share the other.
        assert_eq!(r.assignments[0], r.assignments[1]);
        assert_eq!(r.assignments[1], r.assignments[2]);
        assert_eq!(r.assignments[3], r.assignments[4]);
        assert_eq!(r.assignments[4], r.assignments[5]);
        assert_ne!(r.assignments[0], r.assignments[3]);
    }

    #[test]
    fn three_blobs() {
        let mut points = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (8.0, 0.0), (4.0, 7.0)] {
            for d in 0..4 {
                points.push((cx + 0.1 * d as f64, cy + 0.07 * d as f64));
            }
        }
        let s = neg_sq_dist(&points);
        let r = affinity_propagation(&s, &AffinityPropagationConfig::default());
        assert_eq!(r.num_clusters(), 3, "{r:?}");
    }

    #[test]
    fn preference_controls_cluster_count() {
        let points: Vec<(f64, f64)> = (0..8).map(|i| (i as f64, 0.0)).collect();
        let s = neg_sq_dist(&points);
        let low = affinity_propagation(
            &s,
            &AffinityPropagationConfig {
                preference: Some(-100.0),
                ..Default::default()
            },
        );
        let high = affinity_propagation(
            &s,
            &AffinityPropagationConfig {
                preference: Some(-0.1),
                ..Default::default()
            },
        );
        assert!(
            low.num_clusters() < high.num_clusters(),
            "{low:?} vs {high:?}"
        );
    }

    #[test]
    fn exemplars_assign_to_themselves() {
        let points = [(0.0, 0.0), (0.1, 0.1), (5.0, 5.0), (5.1, 5.1)];
        let s = neg_sq_dist(&points);
        let r = affinity_propagation(&s, &AffinityPropagationConfig::default());
        for &e in &r.exemplars {
            assert_eq!(r.assignments[e], e);
        }
        // Every assignment target is an exemplar.
        for &a in &r.assignments {
            assert!(r.exemplars.contains(&a));
        }
    }

    #[test]
    fn identical_points_single_cluster() {
        let s = vec![vec![0.0; 5]; 5]; // all similarities equal
        let r = affinity_propagation(&s, &AffinityPropagationConfig::default());
        assert!(r.num_clusters() >= 1);
        assert_eq!(r.assignments.len(), 5);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        affinity_propagation(&[vec![0.0, 1.0]], &AffinityPropagationConfig::default());
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn bad_damping_rejected() {
        affinity_propagation(
            &[vec![0.0]],
            &AffinityPropagationConfig {
                damping: 1.0,
                ..Default::default()
            },
        );
    }

    #[test]
    fn cluster_by_convenience() {
        let items = vec![1.0f64, 1.1, 0.9, 9.0, 9.1, 8.9];
        let r = cluster_by(
            &items,
            |a, b| -(a - b).powi(2),
            &AffinityPropagationConfig::default(),
        );
        assert_eq!(r.num_clusters(), 2);
    }
}
