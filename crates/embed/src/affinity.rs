//! Affinity Propagation clustering (Frey & Dueck, *Science* 2007).
//!
//! AP exchanges two message matrices over a similarity matrix `S`:
//!
//! * responsibility `r(i,k)`: how well-suited point `k` is to be the
//!   exemplar of `i`, relative to other candidates —
//!   `r(i,k) = s(i,k) − max_{k'≠k} [a(i,k') + s(i,k')]`,
//! * availability `a(i,k)`: how appropriate it is for `i` to choose `k` —
//!   `a(i,k) = min(0, r(k,k) + Σ_{i'∉{i,k}} max(0, r(i',k)))` and
//!   `a(k,k) = Σ_{i'≠k} max(0, r(i',k))`.
//!
//! Exemplars are points with `r(k,k) + a(k,k) > 0`; every point is assigned
//! to its best exemplar. The self-similarity ("preference") controls the
//! number of clusters — the paper's §3.2.3 uses the default (median
//! similarity) and takes the resulting cluster count as the timeline's date
//! count.

/// Configuration for Affinity Propagation.
#[derive(Debug, Clone, Copy)]
pub struct AffinityPropagationConfig {
    /// Message damping in `[0.5, 1)`; scikit-learn default 0.5.
    pub damping: f64,
    /// Maximum iterations.
    pub max_iter: usize,
    /// Stop after this many iterations without exemplar-set change.
    pub convergence_iter: usize,
    /// Self-similarity; `None` = median of off-diagonal similarities.
    pub preference: Option<f64>,
}

impl Default for AffinityPropagationConfig {
    fn default() -> Self {
        Self {
            damping: 0.5,
            max_iter: 200,
            convergence_iter: 15,
            preference: None,
        }
    }
}

/// Clustering outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterResult {
    /// Exemplar index per point.
    pub assignments: Vec<usize>,
    /// Distinct exemplar indices (sorted).
    pub exemplars: Vec<usize>,
    /// Whether the message loop converged before `max_iter`.
    pub converged: bool,
}

impl ClusterResult {
    /// Number of clusters found.
    pub fn num_clusters(&self) -> usize {
        self.exemplars.len()
    }
}

/// Run Affinity Propagation on a dense similarity matrix (row-major,
/// `n × n`). Higher `s[i][k]` = more similar.
pub fn affinity_propagation(
    similarity: &[Vec<f64>],
    config: &AffinityPropagationConfig,
) -> ClusterResult {
    let n = similarity.len();
    crate::embedding::DENSE_CELLS.fetch_add(
        (n as u64).saturating_mul(n as u64),
        std::sync::atomic::Ordering::Relaxed,
    );
    if n == 0 {
        return ClusterResult {
            assignments: Vec::new(),
            exemplars: Vec::new(),
            converged: true,
        };
    }
    for row in similarity {
        assert_eq!(row.len(), n, "similarity matrix must be square");
    }
    assert!(
        (0.5..1.0).contains(&config.damping),
        "damping must be in [0.5, 1)"
    );
    if n == 1 {
        return ClusterResult {
            assignments: vec![0],
            exemplars: vec![0],
            converged: true,
        };
    }

    // Working copy with preferences on the diagonal.
    let pref = config
        .preference
        .unwrap_or_else(|| median_off_diagonal(similarity));
    let mut s: Vec<f64> = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            s[i * n + k] = if i == k { pref } else { similarity[i][k] };
        }
    }
    // Tiny deterministic jitter breaks exact symmetry ties (scikit-learn
    // adds random noise; we derive it from the indices to stay seedless).
    #[allow(clippy::needless_range_loop)] // i and k jointly form the jitter key
    for i in 0..n {
        for k in 0..n {
            let jitter = ((i * 2654435761 + k * 40503) % 1000) as f64 * 1e-12;
            s[i * n + k] += jitter;
        }
    }

    let damping = config.damping;
    let mut r = vec![0.0f64; n * n];
    let mut a = vec![0.0f64; n * n];
    let mut last_exemplars: Vec<usize> = Vec::new();
    let mut stable = 0usize;
    let mut converged = false;

    for _ in 0..config.max_iter {
        // --- responsibilities ---
        for i in 0..n {
            // Top-2 of a(i,k) + s(i,k) over k.
            let (mut best, mut second, mut best_k) = (f64::NEG_INFINITY, f64::NEG_INFINITY, 0);
            for k in 0..n {
                let v = a[i * n + k] + s[i * n + k];
                if v > best {
                    second = best;
                    best = v;
                    best_k = k;
                } else if v > second {
                    second = v;
                }
            }
            for k in 0..n {
                let cutoff = if k == best_k { second } else { best };
                let new_r = s[i * n + k] - cutoff;
                r[i * n + k] = damping * r[i * n + k] + (1.0 - damping) * new_r;
            }
        }
        // --- availabilities ---
        for k in 0..n {
            let mut pos_sum = 0.0;
            for i in 0..n {
                if i != k {
                    pos_sum += r[i * n + k].max(0.0);
                }
            }
            let rkk = r[k * n + k];
            for i in 0..n {
                let new_a = if i == k {
                    pos_sum
                } else {
                    let adjusted = rkk + pos_sum - r[i * n + k].max(0.0);
                    adjusted.min(0.0)
                };
                a[i * n + k] = damping * a[i * n + k] + (1.0 - damping) * new_a;
            }
        }
        // --- exemplar check ---
        let exemplars: Vec<usize> = (0..n)
            .filter(|&k| r[k * n + k] + a[k * n + k] > 0.0)
            .collect();
        if exemplars == last_exemplars && !exemplars.is_empty() {
            stable += 1;
            if stable >= config.convergence_iter {
                converged = true;
                break;
            }
        } else {
            stable = 0;
            last_exemplars = exemplars;
        }
    }

    let mut exemplars = last_exemplars;
    if exemplars.is_empty() {
        // Degenerate run (all messages tied): fall back to the single best
        // self-score so callers always get a valid clustering.
        let best = (0..n)
            .max_by(|&x, &y| {
                (r[x * n + x] + a[x * n + x])
                    .partial_cmp(&(r[y * n + y] + a[y * n + y]))
                    .expect("finite messages")
            })
            .expect("n > 0");
        exemplars = vec![best];
    }

    // Assign each point to its most similar exemplar; exemplars to
    // themselves.
    let assignments: Vec<usize> = (0..n)
        .map(|i| {
            if exemplars.contains(&i) {
                i
            } else {
                *exemplars
                    .iter()
                    .max_by(|&&x, &&y| {
                        s[i * n + x]
                            .partial_cmp(&s[i * n + y])
                            .expect("finite similarities")
                    })
                    .expect("non-empty exemplars")
            }
        })
        .collect();

    ClusterResult {
        assignments,
        exemplars,
        converged,
    }
}

fn median_off_diagonal(s: &[Vec<f64>]) -> f64 {
    let n = s.len();
    let mut vals: Vec<f64> = Vec::with_capacity(n * (n - 1));
    #[allow(clippy::needless_range_loop)] // i and k jointly index the matrix
    for i in 0..n {
        for k in 0..n {
            if i != k {
                vals.push(s[i][k]);
            }
        }
    }
    if vals.is_empty() {
        return 0.0;
    }
    vals.sort_by(|a, b| a.partial_cmp(b).expect("finite similarities"));
    let m = vals.len();
    if m % 2 == 1 {
        vals[m / 2]
    } else {
        (vals[m / 2 - 1] + vals[m / 2]) / 2.0
    }
}

/// Convenience: cluster points given a similarity function.
pub fn cluster_by<T, F>(items: &[T], sim: F, config: &AffinityPropagationConfig) -> ClusterResult
where
    F: Fn(&T, &T) -> f64,
{
    let n = items.len();
    let matrix: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|k| sim(&items[i], &items[k])).collect())
        .collect();
    affinity_propagation(&matrix, config)
}

/// Sparse Affinity Propagation over candidate pairs (e.g. ANN k-NN output)
/// instead of a dense `n × n` matrix.
///
/// `pairs` holds `(i, k, similarity)` candidates with `0 <= i, k < n`;
/// direction and duplicates don't matter — the input is symmetrized (each
/// pair stored in both directions, duplicates deduped keeping the maximum
/// similarity) and self-pairs are ignored. Unlisted pairs are treated as
/// `-inf` (never similar), the standard sparse-AP semantics: messages flow
/// only along stored edges, so time and memory are O(|pairs|), not O(n²).
///
/// **Equivalence contract** (tested): given the *full* pair set of a
/// symmetric similarity, this computes bit-identical messages to
/// [`affinity_propagation`] — same median preference, same deterministic
/// jitter, same update order — and therefore identical exemplars and
/// assignments. A point whose stored neighbors include no exemplar is
/// assigned to the first (lowest-index) exemplar.
pub fn affinity_propagation_sparse(
    n: usize,
    pairs: &[(usize, usize, f64)],
    config: &AffinityPropagationConfig,
) -> ClusterResult {
    if n == 0 {
        return ClusterResult {
            assignments: Vec::new(),
            exemplars: Vec::new(),
            converged: true,
        };
    }
    assert!(
        (0.5..1.0).contains(&config.damping),
        "damping must be in [0.5, 1)"
    );
    if n == 1 {
        return ClusterResult {
            assignments: vec![0],
            exemplars: vec![0],
            converged: true,
        };
    }

    // --- symmetrize + dedupe into CSR (rows ascending, columns ascending) ---
    let mut edges: Vec<(usize, usize, f64)> = Vec::with_capacity(pairs.len() * 2);
    for &(i, k, v) in pairs {
        assert!(i < n && k < n, "pair index out of range: ({i}, {k}), n = {n}");
        assert!(v.is_finite(), "similarities must be finite");
        if i != k {
            edges.push((i, k, v));
            edges.push((k, i, v));
        }
    }
    edges.sort_unstable_by(|a, b| {
        (a.0, a.1)
            .cmp(&(b.0, b.1))
            .then_with(|| b.2.total_cmp(&a.2)) // duplicate edges: max value first
    });
    edges.dedup_by_key(|e| (e.0, e.1));
    let m = edges.len();

    let pref = config.preference.unwrap_or_else(|| {
        // Median of the stored off-diagonal similarities — on full input
        // this is the same multiset (hence the same median) as the dense
        // path's `median_off_diagonal`.
        let mut vals: Vec<f64> = edges.iter().map(|e| e.2).collect();
        if vals.is_empty() {
            return 0.0;
        }
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite similarities"));
        let m = vals.len();
        if m % 2 == 1 {
            vals[m / 2]
        } else {
            (vals[m / 2 - 1] + vals[m / 2]) / 2.0
        }
    });

    let jitter = |i: usize, k: usize| ((i * 2654435761 + k * 40503) % 1000) as f64 * 1e-12;

    let mut row_off = vec![0usize; n + 1];
    let mut col = vec![0u32; m];
    let mut sv = vec![0.0f64; m];
    for (p, &(i, k, v)) in edges.iter().enumerate() {
        row_off[i + 1] = p + 1;
        col[p] = k as u32;
        sv[p] = v + jitter(i, k);
    }
    // Rows with no edges inherit the previous offset.
    for i in 1..=n {
        row_off[i] = row_off[i].max(row_off[i - 1]);
    }
    drop(edges);
    // Column index: entry positions per column, ascending row (the dense
    // availability pass accumulates over rows in ascending order).
    let mut cols: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (p, &k) in col.iter().enumerate() {
        cols[k as usize].push(p as u32);
    }
    let s_diag: Vec<f64> = (0..n).map(|i| pref + jitter(i, i)).collect();

    let damping = config.damping;
    let mut r = vec![0.0f64; m];
    let mut a = vec![0.0f64; m];
    let mut r_diag = vec![0.0f64; n];
    let mut a_diag = vec![0.0f64; n];
    let mut last_exemplars: Vec<usize> = Vec::new();
    let mut stable = 0usize;
    let mut converged = false;

    for _ in 0..config.max_iter {
        // --- responsibilities (per row, ascending k with diagonal merged) ---
        for i in 0..n {
            let (mut best, mut second) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
            let mut best_is_diag = false;
            let mut best_p = usize::MAX;
            let mut diag_seen = false;
            let mut consider = |v: f64, is_diag: bool, p: usize| {
                if v > best {
                    second = best;
                    best = v;
                    best_is_diag = is_diag;
                    best_p = p;
                } else if v > second {
                    second = v;
                }
            };
            for p in row_off[i]..row_off[i + 1] {
                if !diag_seen && col[p] as usize > i {
                    consider(a_diag[i] + s_diag[i], true, usize::MAX);
                    diag_seen = true;
                }
                consider(a[p] + sv[p], false, p);
            }
            if !diag_seen {
                consider(a_diag[i] + s_diag[i], true, usize::MAX);
            }
            drop(consider);
            for p in row_off[i]..row_off[i + 1] {
                let cutoff = if !best_is_diag && p == best_p {
                    second
                } else {
                    best
                };
                r[p] = damping * r[p] + (1.0 - damping) * (sv[p] - cutoff);
            }
            let cutoff = if best_is_diag { second } else { best };
            r_diag[i] = damping * r_diag[i] + (1.0 - damping) * (s_diag[i] - cutoff);
        }
        // --- availabilities (per column, ascending row) ---
        for k in 0..n {
            let mut pos_sum = 0.0;
            for &p in &cols[k] {
                pos_sum += r[p as usize].max(0.0);
            }
            let rkk = r_diag[k];
            for &p in &cols[k] {
                let p = p as usize;
                let new_a = (rkk + pos_sum - r[p].max(0.0)).min(0.0);
                a[p] = damping * a[p] + (1.0 - damping) * new_a;
            }
            a_diag[k] = damping * a_diag[k] + (1.0 - damping) * pos_sum;
        }
        // --- exemplar check ---
        let exemplars: Vec<usize> = (0..n).filter(|&k| r_diag[k] + a_diag[k] > 0.0).collect();
        if exemplars == last_exemplars && !exemplars.is_empty() {
            stable += 1;
            if stable >= config.convergence_iter {
                converged = true;
                break;
            }
        } else {
            stable = 0;
            last_exemplars = exemplars;
        }
    }

    let mut exemplars = last_exemplars;
    if exemplars.is_empty() {
        let best = (0..n)
            .max_by(|&x, &y| {
                (r_diag[x] + a_diag[x])
                    .partial_cmp(&(r_diag[y] + a_diag[y]))
                    .expect("finite messages")
            })
            .expect("n > 0");
        exemplars = vec![best];
    }

    // Stored similarity s(i, k) (with jitter), or None if the edge is absent.
    let stored = |i: usize, k: usize| -> Option<f64> {
        let row = &col[row_off[i]..row_off[i + 1]];
        let off = row.partition_point(|&c| (c as usize) < k);
        (off < row.len() && row[off] as usize == k).then(|| sv[row_off[i] + off])
    };
    let assignments: Vec<usize> = (0..n)
        .map(|i| {
            if exemplars.contains(&i) {
                return i;
            }
            // Last maximum wins on ties, matching the dense path's
            // `Iterator::max_by`.
            let mut best: Option<(usize, f64)> = None;
            for &x in &exemplars {
                if let Some(v) = stored(i, x) {
                    match best {
                        Some((_, bv)) if v < bv => {}
                        _ => best = Some((x, v)),
                    }
                }
            }
            best.map(|(x, _)| x).unwrap_or(exemplars[0])
        })
        .collect();

    ClusterResult {
        assignments,
        exemplars,
        converged,
    }
}

/// Convenience: sparse clustering given candidate index pairs and a
/// similarity function (the sparse analogue of [`cluster_by`] — similarity
/// is evaluated only on the candidate pairs, never all n²).
pub fn cluster_by_sparse<T, F>(
    items: &[T],
    sim: F,
    pairs: &[(usize, usize)],
    config: &AffinityPropagationConfig,
) -> ClusterResult
where
    F: Fn(&T, &T) -> f64,
{
    let weighted: Vec<(usize, usize, f64)> = pairs
        .iter()
        .map(|&(i, k)| (i, k, sim(&items[i], &items[k])))
        .collect();
    affinity_propagation_sparse(items.len(), &weighted, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Similarity = negative squared euclidean distance (Frey & Dueck's
    /// choice for point data).
    fn neg_sq_dist(points: &[(f64, f64)]) -> Vec<Vec<f64>> {
        points
            .iter()
            .map(|&(x1, y1)| {
                points
                    .iter()
                    .map(|&(x2, y2)| -((x1 - x2).powi(2) + (y1 - y2).powi(2)))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn empty_and_singleton() {
        let r = affinity_propagation(&[], &AffinityPropagationConfig::default());
        assert_eq!(r.num_clusters(), 0);
        let r = affinity_propagation(&[vec![0.0]], &AffinityPropagationConfig::default());
        assert_eq!(r.num_clusters(), 1);
        assert_eq!(r.assignments, vec![0]);
    }

    #[test]
    fn two_well_separated_blobs() {
        let points = [
            (0.0, 0.0),
            (0.1, 0.0),
            (0.0, 0.1),
            (10.0, 10.0),
            (10.1, 10.0),
            (10.0, 10.1),
        ];
        let s = neg_sq_dist(&points);
        let r = affinity_propagation(&s, &AffinityPropagationConfig::default());
        assert_eq!(r.num_clusters(), 2, "{r:?}");
        // Points 0-2 share an exemplar; 3-5 share the other.
        assert_eq!(r.assignments[0], r.assignments[1]);
        assert_eq!(r.assignments[1], r.assignments[2]);
        assert_eq!(r.assignments[3], r.assignments[4]);
        assert_eq!(r.assignments[4], r.assignments[5]);
        assert_ne!(r.assignments[0], r.assignments[3]);
    }

    #[test]
    fn three_blobs() {
        let mut points = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (8.0, 0.0), (4.0, 7.0)] {
            for d in 0..4 {
                points.push((cx + 0.1 * d as f64, cy + 0.07 * d as f64));
            }
        }
        let s = neg_sq_dist(&points);
        let r = affinity_propagation(&s, &AffinityPropagationConfig::default());
        assert_eq!(r.num_clusters(), 3, "{r:?}");
    }

    #[test]
    fn preference_controls_cluster_count() {
        let points: Vec<(f64, f64)> = (0..8).map(|i| (i as f64, 0.0)).collect();
        let s = neg_sq_dist(&points);
        let low = affinity_propagation(
            &s,
            &AffinityPropagationConfig {
                preference: Some(-100.0),
                ..Default::default()
            },
        );
        let high = affinity_propagation(
            &s,
            &AffinityPropagationConfig {
                preference: Some(-0.1),
                ..Default::default()
            },
        );
        assert!(
            low.num_clusters() < high.num_clusters(),
            "{low:?} vs {high:?}"
        );
    }

    #[test]
    fn exemplars_assign_to_themselves() {
        let points = [(0.0, 0.0), (0.1, 0.1), (5.0, 5.0), (5.1, 5.1)];
        let s = neg_sq_dist(&points);
        let r = affinity_propagation(&s, &AffinityPropagationConfig::default());
        for &e in &r.exemplars {
            assert_eq!(r.assignments[e], e);
        }
        // Every assignment target is an exemplar.
        for &a in &r.assignments {
            assert!(r.exemplars.contains(&a));
        }
    }

    #[test]
    fn identical_points_single_cluster() {
        let s = vec![vec![0.0; 5]; 5]; // all similarities equal
        let r = affinity_propagation(&s, &AffinityPropagationConfig::default());
        assert!(r.num_clusters() >= 1);
        assert_eq!(r.assignments.len(), 5);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        affinity_propagation(&[vec![0.0, 1.0]], &AffinityPropagationConfig::default());
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn bad_damping_rejected() {
        affinity_propagation(
            &[vec![0.0]],
            &AffinityPropagationConfig {
                damping: 1.0,
                ..Default::default()
            },
        );
    }

    #[test]
    fn cluster_by_convenience() {
        let items = vec![1.0f64, 1.1, 0.9, 9.0, 9.1, 8.9];
        let r = cluster_by(
            &items,
            |a, b| -(a - b).powi(2),
            &AffinityPropagationConfig::default(),
        );
        assert_eq!(r.num_clusters(), 2);
    }

    /// All ordered off-diagonal pairs of a dense matrix, as sparse input.
    fn full_pairs(s: &[Vec<f64>]) -> Vec<(usize, usize, f64)> {
        let n = s.len();
        let mut pairs = Vec::new();
        for i in 0..n {
            for k in 0..n {
                if i != k {
                    pairs.push((i, k, s[i][k]));
                }
            }
        }
        pairs
    }

    #[test]
    fn sparse_full_input_matches_dense_two_blobs() {
        let points = [
            (0.0, 0.0),
            (0.1, 0.0),
            (0.0, 0.1),
            (10.0, 10.0),
            (10.1, 10.0),
            (10.0, 10.1),
        ];
        let s = neg_sq_dist(&points);
        let cfg = AffinityPropagationConfig::default();
        let dense = affinity_propagation(&s, &cfg);
        let sparse = affinity_propagation_sparse(s.len(), &full_pairs(&s), &cfg);
        assert_eq!(dense.exemplars, sparse.exemplars);
        assert_eq!(dense.assignments, sparse.assignments);
        assert_eq!(dense.converged, sparse.converged);
    }

    #[test]
    fn sparse_full_input_matches_dense_three_blobs() {
        let mut points = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (8.0, 0.0), (4.0, 7.0)] {
            for d in 0..4 {
                points.push((cx + 0.1 * d as f64, cy + 0.07 * d as f64));
            }
        }
        let s = neg_sq_dist(&points);
        let cfg = AffinityPropagationConfig::default();
        let dense = affinity_propagation(&s, &cfg);
        let sparse = affinity_propagation_sparse(s.len(), &full_pairs(&s), &cfg);
        assert_eq!(dense.exemplars, sparse.exemplars);
        assert_eq!(dense.assignments, sparse.assignments);
    }

    #[test]
    fn sparse_matches_dense_with_explicit_preference() {
        let points: Vec<(f64, f64)> = (0..8).map(|i| (i as f64, 0.0)).collect();
        let s = neg_sq_dist(&points);
        let cfg = AffinityPropagationConfig {
            preference: Some(-5.0),
            ..Default::default()
        };
        let dense = affinity_propagation(&s, &cfg);
        let sparse = affinity_propagation_sparse(s.len(), &full_pairs(&s), &cfg);
        assert_eq!(dense.exemplars, sparse.exemplars);
        assert_eq!(dense.assignments, sparse.assignments);
    }

    #[test]
    fn sparse_knn_subset_recovers_blob_structure() {
        // Only within-blob and a handful of cross-blob pairs — far from the
        // full matrix — must still split the two blobs.
        let points = [
            (0.0, 0.0),
            (0.1, 0.0),
            (0.0, 0.1),
            (10.0, 10.0),
            (10.1, 10.0),
            (10.0, 10.1),
        ];
        let d = |i: usize, k: usize| {
            let (x1, y1): (f64, f64) = points[i];
            let (x2, y2) = points[k];
            -((x1 - x2).powi(2) + (y1 - y2).powi(2))
        };
        let mut pairs = Vec::new();
        for blob in [[0, 1, 2], [3, 4, 5]] {
            for &i in &blob {
                for &k in &blob {
                    if i < k {
                        pairs.push((i, k, d(i, k)));
                    }
                }
            }
        }
        pairs.push((0, 3, d(0, 3))); // one bridge edge
        // With a k-NN-truncated pair set the stored-value median skews
        // toward within-blob similarities, so pin the preference to the
        // scale of the cross-blob distance (as the dense median would be).
        let cfg = AffinityPropagationConfig {
            preference: Some(-100.0),
            ..Default::default()
        };
        let r = affinity_propagation_sparse(6, &pairs, &cfg);
        assert_eq!(r.num_clusters(), 2, "{r:?}");
        assert_eq!(r.assignments[0], r.assignments[1]);
        assert_eq!(r.assignments[1], r.assignments[2]);
        assert_eq!(r.assignments[3], r.assignments[4]);
        assert_eq!(r.assignments[4], r.assignments[5]);
        assert_ne!(r.assignments[0], r.assignments[3]);
    }

    #[test]
    fn sparse_empty_and_singleton_and_isolated() {
        let cfg = AffinityPropagationConfig::default();
        let r = affinity_propagation_sparse(0, &[], &cfg);
        assert_eq!(r.num_clusters(), 0);
        let r = affinity_propagation_sparse(1, &[], &cfg);
        assert_eq!(r.assignments, vec![0]);
        // Point 2 has no edges at all: it must become its own exemplar.
        let pairs = vec![(0usize, 1usize, -0.01)];
        let r = affinity_propagation_sparse(3, &pairs, &cfg);
        assert!(r.exemplars.contains(&2), "{r:?}");
        assert_eq!(r.assignments[2], 2);
        assert_eq!(r.assignments.len(), 3);
    }

    #[test]
    fn sparse_symmetrizes_and_dedupes() {
        // Same pair given twice in both directions with different values:
        // the max wins, and the result is the same as providing it once.
        let cfg = AffinityPropagationConfig {
            preference: Some(-1.0),
            ..Default::default()
        };
        let messy = vec![(0usize, 1usize, -0.5), (1usize, 0usize, -0.2), (0, 1, -0.9)];
        let clean = vec![(0usize, 1usize, -0.2)];
        let a = affinity_propagation_sparse(2, &messy, &cfg);
        let b = affinity_propagation_sparse(2, &clean, &cfg);
        assert_eq!(a.exemplars, b.exemplars);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn cluster_by_sparse_matches_cluster_by_on_full_pairs() {
        let items = vec![1.0f64, 1.1, 0.9, 9.0, 9.1, 8.9];
        let sim = |a: &f64, b: &f64| -(a - b).powi(2);
        let cfg = AffinityPropagationConfig::default();
        let dense = cluster_by(&items, sim, &cfg);
        let mut pairs = Vec::new();
        for i in 0..items.len() {
            for k in 0..items.len() {
                if i != k {
                    pairs.push((i, k));
                }
            }
        }
        let sparse = cluster_by_sparse(&items, sim, &pairs, &cfg);
        assert_eq!(dense.exemplars, sparse.exemplars);
        assert_eq!(dense.assignments, sparse.assignments);
    }
}
