//! Embedding substrate for the WILSON reproduction.
//!
//! §3.2.3 of the paper (*automatic date compression*) encodes daily
//! summaries with BERT and clusters them with Affinity Propagation; the
//! number of detected clusters becomes the number of timeline dates. BERT
//! is substituted with [`embedding`] — deterministic feature-hashed TF-IDF
//! projections, which preserve the property AP actually consumes (summaries
//! about the same event are more similar than summaries about different
//! events) — while [`affinity`] is a full from-scratch implementation of
//! Affinity Propagation (Frey & Dueck, *Science* 2007).
#![warn(missing_docs)]

pub mod affinity;
pub mod ann;
pub mod embedding;

pub use affinity::{
    affinity_propagation, affinity_propagation_sparse, cluster_by, cluster_by_sparse,
    AffinityPropagationConfig, ClusterResult,
};
pub use ann::{AnnConfig, AnnIndex};
pub use embedding::{cosine_matrix, dense_cells_allocated, SentenceEmbedder};
