//! Feature-hashed sentence embeddings — the BERT substitute.
//!
//! Each sentence is analyzed (stemmed, stopword-filtered), every term is
//! hashed into `dim` buckets with a sign hash (the classic hashing trick),
//! weighted by a smoothed idf estimated online, and the result is
//! L2-normalized. Dot products of these vectors approximate TF-IDF cosine
//! similarity, which is all Affinity Propagation needs to find event
//! clusters among daily summaries.

use tl_nlp::{allpairs_dot, AnalysisOptions, Analyzer, SparseVector};

/// Dense sentence embedder with a fixed output dimension.
#[derive(Debug)]
pub struct SentenceEmbedder {
    analyzer: Analyzer,
    dim: usize,
}

/// 64-bit mix hash (splitmix64 finalizer) — stable across platforms.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn hash_str(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    mix(h)
}

impl SentenceEmbedder {
    /// Create an embedder producing `dim`-dimensional unit vectors.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Self {
            analyzer: Analyzer::new(AnalysisOptions::retrieval()),
            dim,
        }
    }

    /// Output dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embed one sentence into a unit vector (zero vector if no content
    /// terms survive analysis).
    pub fn embed(&mut self, text: &str) -> Vec<f64> {
        let ids = self.analyzer.analyze(text);
        let mut v = vec![0.0f64; self.dim];
        for id in ids {
            let term = self
                .analyzer
                .vocab()
                .term(id)
                .expect("just-interned id resolves")
                .to_string();
            let h = hash_str(&term);
            let bucket = (h % self.dim as u64) as usize;
            let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
            v[bucket] += sign;
        }
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        v
    }

    /// Embed a batch of sentences.
    pub fn embed_all<S: AsRef<str>>(&mut self, texts: &[S]) -> Vec<Vec<f64>> {
        texts.iter().map(|t| self.embed(t.as_ref())).collect()
    }
}

/// Cosine similarity of two dense vectors of equal length.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// The full `n × n` cosine matrix of `vectors`, **bit-identical** to
/// calling [`cosine`] on every `(i, k)` pair but routed through the shared
/// sparse all-pairs kernel so only dimension-sharing pairs are touched.
///
/// Why the bits match: a dense dot/norm accumulator starts at `+0.0` and,
/// in IEEE round-to-nearest, can never become `-0.0` (a cancelling sum
/// `x + (−x)` yields `+0.0`, and `+0.0 + ±0.0 = +0.0`), so every `±0.0`
/// product contributed by a zero component is a bitwise no-op. Dropping
/// the zero components (the sparse conversion) therefore removes only
/// no-op additions, and the kernel accumulates the surviving products in
/// the same ascending-dimension order as the dense loop.
pub fn cosine_matrix(vectors: &[Vec<f64>], parallel: bool) -> Vec<Vec<f64>> {
    let n = vectors.len();
    if n == 0 {
        return Vec::new();
    }
    let dim = vectors[0].len();
    for v in vectors {
        assert_eq!(v.len(), dim, "dimension mismatch");
    }
    let sparse: Vec<SparseVector> = vectors
        .iter()
        .map(|v| {
            SparseVector::from_pairs(
                v.iter()
                    .enumerate()
                    .map(|(d, &x)| (d as u32, x))
                    .collect(),
            )
        })
        .collect();
    // Pre-sqrt sums of squares: same bits as the dense `Σ x·x`, and
    // `dot(v, v)` replays exactly that accumulation for the diagonal.
    let sq: Vec<f64> = sparse.iter().map(|v| v.dot(v)).collect();
    let norms: Vec<f64> = sq.iter().map(|s| s.sqrt()).collect();
    let rows = allpairs_dot(&sparse, parallel);
    let mut out = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        if norms[i] != 0.0 {
            out[i][i] = sq[i] / (norms[i] * norms[i]);
        }
        for &(k, dot) in &rows[i] {
            let k = k as usize;
            if norms[i] != 0.0 && norms[k] != 0.0 {
                out[i][k] = dot / (norms[i] * norms[k]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_norm() {
        let mut e = SentenceEmbedder::new(64);
        let v = e.embed("the summit between trump and kim took place");
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_text_gives_zero_vector() {
        let mut e = SentenceEmbedder::new(32);
        let v = e.embed("");
        assert!(v.iter().all(|&x| x == 0.0));
        // Pure stopwords also vanish under retrieval analysis.
        let v = e.embed("the of and was");
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn deterministic() {
        let mut e1 = SentenceEmbedder::new(64);
        let mut e2 = SentenceEmbedder::new(64);
        assert_eq!(
            e1.embed("nuclear summit talks"),
            e2.embed("nuclear summit talks")
        );
    }

    #[test]
    fn same_topic_closer_than_different_topic() {
        let mut e = SentenceEmbedder::new(256);
        let a = e.embed("nuclear summit negotiations between leaders");
        let b = e.embed("summit negotiations on nuclear weapons");
        let c = e.embed("hurricane flood damage rescue shelter evacuation");
        assert!(cosine(&a, &b) > cosine(&a, &c));
    }

    #[test]
    fn word_order_invariant() {
        let mut e = SentenceEmbedder::new(128);
        let a = e.embed("protest police cairo");
        let b = e.embed("cairo police protest");
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_edge_cases() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn cosine_dimension_checked() {
        cosine(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        SentenceEmbedder::new(0);
    }

    #[test]
    fn cosine_matrix_bit_identical_to_dense_loops() {
        let mut e = SentenceEmbedder::new(64);
        let mut texts: Vec<String> = (0..40)
            .map(|i| format!("event {} unfolded near the {} border crossing {}", i % 7, i % 5, i))
            .collect();
        texts.push(String::new()); // zero vector
        texts.push("the of and was".into()); // stopwords-only → zero vector
        let vectors = e.embed_all(&texts);
        for parallel in [false, true] {
            let m = cosine_matrix(&vectors, parallel);
            for (i, vi) in vectors.iter().enumerate() {
                for (k, vk) in vectors.iter().enumerate() {
                    let want = cosine(vi, vk);
                    assert_eq!(
                        m[i][k].to_bits(),
                        want.to_bits(),
                        "({i},{k}) parallel={parallel}: {} vs {want}",
                        m[i][k]
                    );
                }
            }
        }
    }

    #[test]
    fn cosine_matrix_empty() {
        assert!(cosine_matrix(&[], true).is_empty());
    }

    #[test]
    fn embed_all_matches_embed() {
        let mut e = SentenceEmbedder::new(64);
        let batch = e.embed_all(&["alpha beta", "gamma delta"]);
        let mut e2 = SentenceEmbedder::new(64);
        assert_eq!(batch[0], e2.embed("alpha beta"));
        assert_eq!(batch[1], e2.embed("gamma delta"));
    }
}
