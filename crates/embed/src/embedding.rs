//! Feature-hashed sentence embeddings — the BERT substitute.
//!
//! Each sentence is analyzed (stemmed, stopword-filtered), every term is
//! hashed into `dim` buckets with a sign hash (the classic hashing trick),
//! weighted by a smoothed idf estimated online, and the result is
//! L2-normalized. Dot products of these vectors approximate TF-IDF cosine
//! similarity, which is all Affinity Propagation needs to find event
//! clusters among daily summaries.

use std::sync::atomic::{AtomicU64, Ordering};
use tl_nlp::{allpairs_dot, AnalysisOptions, Analyzer, SparseVector};

/// Process-wide count of dense `n × n` similarity-matrix cells allocated by
/// this crate ([`cosine_matrix`] and the dense working arrays of
/// [`crate::affinity_propagation`]). The ANN / sparse clustering paths never
/// touch it, which is how the scale tests *prove* no quadratic matrix was
/// materialized: they assert a zero delta across a 100k-sentence run.
/// Monotonic and shared by the whole process — only deltas are meaningful.
pub(crate) static DENSE_CELLS: AtomicU64 = AtomicU64::new(0);

/// Current value of the process-wide dense-cell allocation counter.
pub fn dense_cells_allocated() -> u64 {
    DENSE_CELLS.load(Ordering::Relaxed)
}

/// Dense sentence embedder with a fixed output dimension.
#[derive(Debug)]
pub struct SentenceEmbedder {
    analyzer: Analyzer,
    dim: usize,
}

/// 64-bit mix hash (splitmix64 finalizer) — stable across platforms.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn hash_str(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    mix(h)
}

impl SentenceEmbedder {
    /// Create an embedder producing `dim`-dimensional unit vectors.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Self {
            analyzer: Analyzer::new(AnalysisOptions::retrieval()),
            dim,
        }
    }

    /// Output dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embed one sentence into a unit vector (zero vector if no content
    /// terms survive analysis).
    ///
    /// Kept `&mut self` for source compatibility; delegates to
    /// [`SentenceEmbedder::embed_frozen`], which is the real implementation.
    pub fn embed(&mut self, text: &str) -> Vec<f64> {
        self.embed_frozen(text)
    }

    /// Read-only embedding: identical output to [`SentenceEmbedder::embed`]
    /// for every input, through a `&self` receiver.
    ///
    /// The hashing trick keys on term *text*, not on interned vocabulary
    /// ids, so the embedding never needs a growable vocabulary at all — the
    /// analyzer's options (stem, stopword, punctuation) are the only state
    /// consulted. Any number of query threads can therefore embed
    /// concurrently against a shared embedder with no lock, mirroring the
    /// vocab-pinned snapshot trick the sharded engine uses for frozen
    /// query analysis.
    pub fn embed_frozen(&self, text: &str) -> Vec<f64> {
        let terms = self.analyzer.analyze_terms(text);
        let mut v = vec![0.0f64; self.dim];
        for term in &terms {
            let h = hash_str(term);
            let bucket = (h % self.dim as u64) as usize;
            let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
            v[bucket] += sign;
        }
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        v
    }

    /// Embed a batch of sentences.
    pub fn embed_all<S: AsRef<str>>(&mut self, texts: &[S]) -> Vec<Vec<f64>> {
        texts.iter().map(|t| self.embed_frozen(t.as_ref())).collect()
    }

    /// Embed a batch through the read-only path, optionally fanning out
    /// over all cores (order-preserving). This is what the ANN benches use
    /// to embed 10⁵–10⁶ sentences.
    pub fn embed_batch<S: AsRef<str> + Sync>(&self, texts: &[S], parallel: bool) -> Vec<Vec<f64>> {
        if parallel {
            tl_support::par::par_map(texts, |t| self.embed_frozen(t.as_ref()))
        } else {
            texts.iter().map(|t| self.embed_frozen(t.as_ref())).collect()
        }
    }
}

/// Cosine similarity of two dense vectors of equal length.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// The full `n × n` cosine matrix of `vectors`, **bit-identical** to
/// calling [`cosine`] on every `(i, k)` pair but routed through the shared
/// sparse all-pairs kernel so only dimension-sharing pairs are touched.
///
/// Why the bits match: a dense dot/norm accumulator starts at `+0.0` and,
/// in IEEE round-to-nearest, can never become `-0.0` (a cancelling sum
/// `x + (−x)` yields `+0.0`, and `+0.0 + ±0.0 = +0.0`), so every `±0.0`
/// product contributed by a zero component is a bitwise no-op. Dropping
/// the zero components (the sparse conversion) therefore removes only
/// no-op additions, and the kernel accumulates the surviving products in
/// the same ascending-dimension order as the dense loop.
pub fn cosine_matrix(vectors: &[Vec<f64>], parallel: bool) -> Vec<Vec<f64>> {
    let n = vectors.len();
    if n == 0 {
        return Vec::new();
    }
    let dim = vectors[0].len();
    for v in vectors {
        assert_eq!(v.len(), dim, "dimension mismatch");
    }
    DENSE_CELLS.fetch_add((n * n) as u64, Ordering::Relaxed);
    let sparse: Vec<SparseVector> = vectors
        .iter()
        .map(|v| {
            SparseVector::from_pairs(
                v.iter()
                    .enumerate()
                    .map(|(d, &x)| (d as u32, x))
                    .collect(),
            )
        })
        .collect();
    // Pre-sqrt sums of squares: same bits as the dense `Σ x·x`, and
    // `dot(v, v)` replays exactly that accumulation for the diagonal.
    let sq: Vec<f64> = sparse.iter().map(|v| v.dot(v)).collect();
    let norms: Vec<f64> = sq.iter().map(|s| s.sqrt()).collect();
    let rows = allpairs_dot(&sparse, parallel);
    let mut out = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        if norms[i] != 0.0 {
            out[i][i] = sq[i] / (norms[i] * norms[i]);
        }
        for &(k, dot) in &rows[i] {
            let k = k as usize;
            if norms[i] != 0.0 && norms[k] != 0.0 {
                out[i][k] = dot / (norms[i] * norms[k]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_norm() {
        let mut e = SentenceEmbedder::new(64);
        let v = e.embed("the summit between trump and kim took place");
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_text_gives_zero_vector() {
        let mut e = SentenceEmbedder::new(32);
        let v = e.embed("");
        assert!(v.iter().all(|&x| x == 0.0));
        // Pure stopwords also vanish under retrieval analysis.
        let v = e.embed("the of and was");
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn deterministic() {
        let mut e1 = SentenceEmbedder::new(64);
        let mut e2 = SentenceEmbedder::new(64);
        assert_eq!(
            e1.embed("nuclear summit talks"),
            e2.embed("nuclear summit talks")
        );
    }

    #[test]
    fn same_topic_closer_than_different_topic() {
        let mut e = SentenceEmbedder::new(256);
        let a = e.embed("nuclear summit negotiations between leaders");
        let b = e.embed("summit negotiations on nuclear weapons");
        let c = e.embed("hurricane flood damage rescue shelter evacuation");
        assert!(cosine(&a, &b) > cosine(&a, &c));
    }

    #[test]
    fn word_order_invariant() {
        let mut e = SentenceEmbedder::new(128);
        let a = e.embed("protest police cairo");
        let b = e.embed("cairo police protest");
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_edge_cases() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn cosine_dimension_checked() {
        cosine(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        SentenceEmbedder::new(0);
    }

    #[test]
    fn cosine_matrix_bit_identical_to_dense_loops() {
        let mut e = SentenceEmbedder::new(64);
        let mut texts: Vec<String> = (0..40)
            .map(|i| format!("event {} unfolded near the {} border crossing {}", i % 7, i % 5, i))
            .collect();
        texts.push(String::new()); // zero vector
        texts.push("the of and was".into()); // stopwords-only → zero vector
        let vectors = e.embed_all(&texts);
        for parallel in [false, true] {
            let m = cosine_matrix(&vectors, parallel);
            for (i, vi) in vectors.iter().enumerate() {
                for (k, vk) in vectors.iter().enumerate() {
                    let want = cosine(vi, vk);
                    assert_eq!(
                        m[i][k].to_bits(),
                        want.to_bits(),
                        "({i},{k}) parallel={parallel}: {} vs {want}",
                        m[i][k]
                    );
                }
            }
        }
    }

    #[test]
    fn cosine_matrix_empty() {
        assert!(cosine_matrix(&[], true).is_empty());
    }

    #[test]
    fn embed_all_matches_embed() {
        let mut e = SentenceEmbedder::new(64);
        let batch = e.embed_all(&["alpha beta", "gamma delta"]);
        let mut e2 = SentenceEmbedder::new(64);
        assert_eq!(batch[0], e2.embed("alpha beta"));
        assert_eq!(batch[1], e2.embed("gamma delta"));
    }

    #[test]
    fn embed_frozen_bitwise_matches_embed() {
        let mut e = SentenceEmbedder::new(128);
        let texts = [
            "nuclear summit negotiations between leaders",
            "",
            "the of and was",
            "ceasefire-envoy talks resumed near the border",
        ];
        for t in texts {
            let frozen = e.embed_frozen(t);
            let grown = e.embed(t);
            assert_eq!(
                frozen.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                grown.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "{t:?}"
            );
        }
    }

    #[test]
    fn embed_batch_matches_serial() {
        let e = SentenceEmbedder::new(64);
        let texts = ["alpha beta", "gamma delta", "", "epsilon"];
        let serial = e.embed_batch(&texts, false);
        let parallel = e.embed_batch(&texts, true);
        assert_eq!(serial, parallel);
        assert_eq!(serial[0], e.embed_frozen("alpha beta"));
    }

    #[test]
    fn cosine_matrix_single_element() {
        let m = cosine_matrix(&[vec![0.6, 0.8]], false);
        assert_eq!(m.len(), 1);
        assert!((m[0][0] - 1.0).abs() < 1e-12);
        // A lone zero vector: similarity to itself is defined as 0.
        let z = cosine_matrix(&[vec![0.0, 0.0]], false);
        assert_eq!(z[0][0], 0.0);
    }

    #[test]
    fn cosine_matrix_all_identical_and_zero_rows() {
        let mut e = SentenceEmbedder::new(64);
        let mut vectors: Vec<Vec<f64>> = (0..5)
            .map(|_| e.embed("identical report about the summit"))
            .collect();
        vectors.push(vec![0.0; 64]); // zero vector rides along
        let m = cosine_matrix(&vectors, false);
        for i in 0..5 {
            for k in 0..5 {
                assert!((m[i][k] - 1.0).abs() < 1e-9, "({i},{k}) = {}", m[i][k]);
            }
            assert_eq!(m[i][5], 0.0);
            assert_eq!(m[5][i], 0.0);
        }
        assert_eq!(m[5][5], 0.0);
    }

    #[test]
    fn dense_cell_counter_tracks_cosine_matrix() {
        let before = dense_cells_allocated();
        let _ = cosine_matrix(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]], false);
        assert!(dense_cells_allocated() >= before + 9);
    }
}
