//! Date-filtered approximate-nearest-neighbor search over the feature-hashed
//! TF-IDF embeddings — the hermetic (std-only) stand-in for a vector
//! database.
//!
//! The structure is an **IVF index** (inverted file with a coarse
//! quantizer): a spherical k-means over a training sample partitions the
//! unit sphere into `nlist` cells, every vector is assigned to its nearest
//! centroid, and a query probes only the `nprobe` cells whose centroids
//! score highest against it. Candidates from the probed cells are then
//! **re-ranked exactly** — the cosine returned for every hit is computed
//! against the stored vector, so the only approximation is *which*
//! candidates were considered, never their scores.
//!
//! Two properties production timeline systems need are pushed *into* the
//! index rather than bolted on:
//!
//! * **date-range filtering** — each cell's posting list is kept sorted by
//!   `(date, id)`, so a date-scoped query binary-searches the in-range
//!   sub-span of every probed list and scans nothing outside it (no
//!   post-filtering over out-of-range candidates),
//! * **incremental inserts** — new vectors are assigned to their nearest
//!   existing cell in O(`nlist` · nnz) and spliced into the posting order;
//!   when the index outgrows its training set (`retrain_growth`×) the
//!   quantizer deterministically retrains and reassigns, so long-running
//!   ingestion (`RealTimeSystem`-style publish epochs) keeps cells
//!   balanced without a rebuild-the-world step.
//!
//! Vectors are stored sparse (nonzero dimension + `f32` value, L2-normalized
//! at insert): a hashed TF-IDF sentence has ~10–25 nonzeros out of 256
//! dimensions, so a million sentences fit in ~10⁸ bytes instead of the 2 GB
//! a dense `f64` matrix would take. Everything — sampling, k-means init,
//! empty-cell reseeding — is seeded through the in-tree xoshiro PRNG, so
//! the index is a pure function of (config, insertion sequence).

use tl_support::par::par_map_threads;
use tl_support::rng::{splitmix64, Rng};

/// Configuration for [`AnnIndex`].
#[derive(Debug, Clone)]
pub struct AnnConfig {
    /// Number of coarse cells; `None` = `ceil(sqrt(n))` at (re)train time,
    /// clamped to `[1, 4096]`.
    pub nlist: Option<usize>,
    /// Cells probed per query. Recall rises with `nprobe/nlist`; latency is
    /// proportional to the candidates scanned.
    pub nprobe: usize,
    /// Lloyd iterations for the spherical k-means.
    pub kmeans_iters: usize,
    /// Cap on the k-means training sample.
    pub train_sample: usize,
    /// Below this many vectors the index stays *flat* (exhaustive scan —
    /// exact by construction); the quantizer trains once the count reaches
    /// it.
    pub min_train: usize,
    /// Retrain when `len() >= retrain_growth * trained_n`.
    pub retrain_growth: f64,
    /// Seed for sampling, k-means init and empty-cell reseeding.
    pub seed: u64,
    /// Parallelism degree for the bulk stages (k-means assignment,
    /// full-store reassignment, per-cell query fan-out, `knn_pairs`);
    /// `0` = the global pool's worker count, `1` = fully serial on the
    /// calling thread. Every parallel stage is a pure per-slot map reduced
    /// in fixed order, so results are **bitwise identical** for every
    /// value of this field — it shapes scheduling only.
    pub threads: usize,
}

impl Default for AnnConfig {
    fn default() -> Self {
        Self {
            nlist: None,
            nprobe: 40,
            kmeans_iters: 6,
            train_sample: 4096,
            min_train: 512,
            retrain_growth: 2.0,
            seed: 0x0A5E_17AB,
            threads: 0,
        }
    }
}

/// A search hit: external id and the exact cosine against the stored vector.
pub type Hit = (u64, f64);

/// IVF approximate-nearest-neighbor index with date-filtered postings.
#[derive(Debug, Clone)]
pub struct AnnIndex {
    dim: usize,
    cfg: AnnConfig,
    // Sparse vector store (unit-normalized): entry i occupies
    // dims/vals[offs[i]..offs[i+1]].
    dims: Vec<u32>,
    vals: Vec<f32>,
    offs: Vec<usize>,
    ids: Vec<u64>,
    dates: Vec<i32>,
    // Coarse quantizer, transposed for cache-friendly sparse assignment:
    // ct[d * nlist + l] = component d of centroid l. Empty = untrained.
    ct: Vec<f32>,
    nlist: usize,
    /// Per-cell posting lists of internal indices, sorted by `(date, id)`.
    lists: Vec<Vec<u32>>,
    trained_n: usize,
    retrains: u32,
}

impl AnnIndex {
    /// An empty index for `dim`-dimensional vectors.
    pub fn new(dim: usize, cfg: AnnConfig) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        assert!(cfg.nprobe > 0, "nprobe must be positive");
        assert!(cfg.retrain_growth > 1.0, "retrain_growth must exceed 1");
        Self {
            dim,
            cfg,
            dims: Vec::new(),
            vals: Vec::new(),
            offs: vec![0],
            ids: Vec::new(),
            dates: Vec::new(),
            ct: Vec::new(),
            nlist: 0,
            lists: Vec::new(),
            trained_n: 0,
            retrains: 0,
        }
    }

    /// Bulk construction: ingest everything, then train the quantizer once
    /// (avoids the `log(n)` intermediate retrains of repeated
    /// [`AnnIndex::insert`]).
    pub fn build<I>(dim: usize, cfg: AnnConfig, items: I) -> Self
    where
        I: IntoIterator<Item = (u64, i32, Vec<f64>)>,
    {
        let mut idx = Self::new(dim, cfg);
        for (id, date, v) in items {
            idx.push_raw(id, date, &v);
        }
        if idx.len() >= idx.cfg.min_train {
            idx.train();
        }
        idx
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// True once the coarse quantizer has been trained (before that the
    /// index is flat and searches are exhaustive, i.e. exact).
    pub fn is_trained(&self) -> bool {
        self.nlist > 0
    }

    /// How many times the quantizer has (re)trained.
    pub fn retrains(&self) -> u32 {
        self.retrains
    }

    /// Approximate resident bytes of the index (vector store + quantizer +
    /// postings).
    pub fn memory_bytes(&self) -> usize {
        self.dims.capacity() * std::mem::size_of::<u32>()
            + self.vals.capacity() * std::mem::size_of::<f32>()
            + self.offs.capacity() * std::mem::size_of::<usize>()
            + self.ids.capacity() * std::mem::size_of::<u64>()
            + self.dates.capacity() * std::mem::size_of::<i32>()
            + self.ct.capacity() * std::mem::size_of::<f32>()
            + self
                .lists
                .iter()
                .map(|l| l.capacity() * std::mem::size_of::<u32>())
                .sum::<usize>()
    }

    /// Insert one vector (any norm; normalized internally — an all-zero
    /// vector is stored as-is and scores 0 against everything). `date` is
    /// the vector's day key (e.g. `Date::days()`); `id` is the caller's
    /// identifier, echoed back by search.
    ///
    /// Amortized cost: O(nnz · nlist) for the cell assignment plus an
    /// ordered splice into one posting list; a deterministic retrain fires
    /// when the index has doubled (`retrain_growth`) since training.
    pub fn insert(&mut self, id: u64, date: i32, vector: &[f64]) {
        let idx = self.push_raw(id, date, vector);
        if self.is_trained() {
            let list = self.assign(idx as usize);
            let pos = self.posting_position(list, idx);
            self.lists[list].insert(pos, idx);
        }
        self.maybe_retrain();
    }

    /// Top-`k` cosine search with exact re-ranking of every candidate.
    ///
    /// `range = Some((lo, hi))` restricts hits to `lo <= date <= hi`
    /// (inclusive), enforced *inside* the index via the date-sorted
    /// postings. Results are sorted by `(score desc, id asc)`. A zero
    /// query returns no hits.
    pub fn search(&self, query: &[f64], k: usize, range: Option<(i32, i32)>) -> Vec<Hit> {
        let Some(qdense) = self.normalize_query(query) else {
            return Vec::new();
        };
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let mut top = TopK::new(k);
        if !self.is_trained() {
            for idx in 0..self.len() {
                if in_range(self.dates[idx], range) {
                    top.offer(self.score_idx(idx, &qdense), self.ids[idx]);
                }
            }
            return top.into_sorted();
        }
        let probes = self.probe_order(&qdense);
        let cells: Vec<usize> = probes.into_iter().take(self.cfg.nprobe).collect();
        let degree = self.par_degree().min(cells.len().max(1));
        if degree <= 1 {
            for &list in &cells {
                let posting = &self.lists[list];
                let (lo, hi) = self.posting_range(posting, range);
                for &idx in &posting[lo..hi] {
                    let idx = idx as usize;
                    debug_assert!(in_range(self.dates[idx], range));
                    top.offer(self.score_idx(idx, &qdense), self.ids[idx]);
                }
            }
        } else {
            // Fan the probed cells out across the pool: each task keeps a
            // per-cell top-k, merged serially in probe order. Bitwise equal
            // to the serial scan: every candidate's score comes from the
            // same `score_idx` call, ids are unique across cells (each
            // vector lives in exactly one posting list), and top-k under
            // the strict `(score desc, id asc)` total order is a function
            // of the candidate *set*, not of visit order.
            let partials = par_map_threads(&cells, degree, |&list| {
                let posting = &self.lists[list];
                let (lo, hi) = self.posting_range(posting, range);
                let mut cell_top = TopK::new(k);
                for &idx in &posting[lo..hi] {
                    let idx = idx as usize;
                    debug_assert!(in_range(self.dates[idx], range));
                    cell_top.offer(self.score_idx(idx, &qdense), self.ids[idx]);
                }
                cell_top.into_sorted()
            });
            for part in partials {
                for (id, score) in part {
                    top.offer(score, id);
                }
            }
        }
        top.into_sorted()
    }

    /// Exhaustive exact top-`k` search over the same stored vectors, with
    /// the same scoring, ordering and date-filter semantics as
    /// [`AnnIndex::search`] — the brute-force reference the recall suites
    /// and benches compare against.
    pub fn search_exact(&self, query: &[f64], k: usize, range: Option<(i32, i32)>) -> Vec<Hit> {
        let Some(qdense) = self.normalize_query(query) else {
            return Vec::new();
        };
        if k == 0 {
            return Vec::new();
        }
        let mut top = TopK::new(k);
        for idx in 0..self.len() {
            if in_range(self.dates[idx], range) {
                top.offer(self.score_idx(idx, &qdense), self.ids[idx]);
            }
        }
        top.into_sorted()
    }

    /// For every indexed vector, its `k` nearest neighbors (excluding
    /// itself), as `(i, j, cosine)` candidate pairs ready for
    /// [`crate::affinity_propagation_sparse`]. `i`/`j` are *insertion
    /// positions* (0-based), not external ids — the natural keying for
    /// clustering a corpus that was indexed in order.
    pub fn knn_pairs(&self, k: usize) -> Vec<(usize, usize, f64)> {
        // One row per vector, rows computed in parallel and concatenated in
        // index order — the exact sequence the serial loop produced.
        let rows: Vec<usize> = (0..self.len()).collect();
        let per_row = par_map_threads(&rows, self.par_degree(), |&idx| {
            let (s, e) = (self.offs[idx], self.offs[idx + 1]);
            let mut qdense = vec![0.0f64; self.dim];
            for p in s..e {
                qdense[self.dims[p] as usize] = self.vals[p] as f64;
            }
            // Over-fetch by one so dropping the self-hit still leaves k.
            self.search(&qdense, k + 1, None)
                .into_iter()
                .filter_map(|(id, sim)| {
                    let j = id as usize;
                    (j != idx).then_some((idx, j, sim))
                })
                .collect::<Vec<_>>()
        });
        per_row.into_iter().flatten().collect()
    }

    // ----- internals -------------------------------------------------

    /// Effective parallelism degree: `cfg.threads`, with `0` meaning the
    /// global pool's worker count. Degree 1 keeps every bulk stage inline
    /// on the calling thread.
    fn par_degree(&self) -> usize {
        if self.cfg.threads == 0 {
            tl_support::par::threads()
        } else {
            self.cfg.threads
        }
    }

    /// Append to the vector store without touching postings; returns the
    /// internal index.
    fn push_raw(&mut self, id: u64, date: i32, vector: &[f64]) -> u32 {
        assert_eq!(vector.len(), self.dim, "dimension mismatch");
        let norm: f64 = vector.iter().map(|x| x * x).sum::<f64>().sqrt();
        for (d, &x) in vector.iter().enumerate() {
            if x != 0.0 && norm > 0.0 {
                self.dims.push(d as u32);
                self.vals.push((x / norm) as f32);
            }
        }
        self.offs.push(self.dims.len());
        self.ids.push(id);
        self.dates.push(date);
        (self.ids.len() - 1) as u32
    }

    fn maybe_retrain(&mut self) {
        let n = self.len();
        if !self.is_trained() {
            if n >= self.cfg.min_train {
                self.train();
            }
        } else if n as f64 >= self.trained_n as f64 * self.cfg.retrain_growth {
            self.train();
        }
    }

    /// Exact cosine of stored vector `idx` against the dense unit query
    /// (f64 accumulation over the stored f32 components; shared by the ANN
    /// and brute-force paths so their scores are bit-identical).
    #[inline]
    fn score_idx(&self, idx: usize, qdense: &[f64]) -> f64 {
        let (s, e) = (self.offs[idx], self.offs[idx + 1]);
        let mut acc = 0.0f64;
        for p in s..e {
            acc += self.vals[p] as f64 * qdense[self.dims[p] as usize];
        }
        acc
    }

    /// Copy + L2-normalize the query; `None` for a zero query.
    fn normalize_query(&self, query: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        let norm: f64 = query.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm == 0.0 {
            return None;
        }
        Some(query.iter().map(|x| x / norm).collect())
    }

    /// Scores of every centroid against a sparse row of the store.
    fn cell_scores_sparse(&self, s: usize, e: usize) -> Vec<f32> {
        let mut scores = vec![0.0f32; self.nlist];
        for p in s..e {
            let row = &self.ct[self.dims[p] as usize * self.nlist..][..self.nlist];
            let v = self.vals[p];
            for (l, c) in row.iter().enumerate() {
                scores[l] += v * c;
            }
        }
        scores
    }

    /// Nearest cell for stored vector `idx` (max dot, ties to the lowest
    /// cell index — this is where all-zero vectors land in cell 0).
    fn assign(&self, idx: usize) -> usize {
        let scores = self.cell_scores_sparse(self.offs[idx], self.offs[idx + 1]);
        argmax_f32(&scores)
    }

    /// Cells ordered by query affinity (score desc, index asc).
    fn probe_order(&self, qdense: &[f64]) -> Vec<usize> {
        let mut scores = vec![0.0f32; self.nlist];
        for (d, &x) in qdense.iter().enumerate() {
            if x != 0.0 {
                let row = &self.ct[d * self.nlist..][..self.nlist];
                let x = x as f32;
                for (l, c) in row.iter().enumerate() {
                    scores[l] += x * c;
                }
            }
        }
        let mut order: Vec<usize> = (0..self.nlist).collect();
        order.sort_unstable_by(|&a, &b| {
            scores[b]
                .total_cmp(&scores[a])
                .then_with(|| a.cmp(&b))
        });
        order
    }

    /// Where `idx` belongs in `list` under the `(date, id)` posting order.
    fn posting_position(&self, list: usize, idx: u32) -> usize {
        let key = (self.dates[idx as usize], self.ids[idx as usize]);
        self.lists[list]
            .partition_point(|&j| (self.dates[j as usize], self.ids[j as usize]) < key)
    }

    /// The `[lo, hi)` sub-span of a posting list that intersects the date
    /// range (the whole list when unfiltered).
    fn posting_range(&self, posting: &[u32], range: Option<(i32, i32)>) -> (usize, usize) {
        match range {
            None => (0, posting.len()),
            Some((lo, hi)) => {
                let start = posting.partition_point(|&j| self.dates[j as usize] < lo);
                let end = posting.partition_point(|&j| self.dates[j as usize] <= hi);
                (start, end)
            }
        }
    }

    /// (Re)train the coarse quantizer and rebuild every posting list.
    /// Deterministic: a pure function of (config seed, retrain count,
    /// current store contents).
    fn train(&mut self) {
        let n = self.len();
        if n == 0 {
            return;
        }
        self.retrains += 1;
        let mut seed_state = self
            .cfg
            .seed
            ^ (self.retrains as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (n as u64).rotate_left(32);
        let mut rng = Rng::seed_from_u64(splitmix64(&mut seed_state));

        let nlist = self
            .cfg
            .nlist
            .unwrap_or_else(|| (n as f64).sqrt().ceil() as usize)
            .clamp(1, 4096)
            .min(n);

        // --- training sample (sorted for deterministic iteration) ---
        let sample: Vec<usize> = if n <= self.cfg.train_sample {
            (0..n).collect()
        } else {
            let mut s = rng.sample_indices(n, self.cfg.train_sample);
            s.sort_unstable();
            s
        };

        let degree = self.par_degree();

        // --- k-means++ init (distance analog: 1 - best cosine) ---
        // The per-sample similarity maps below run sharded over the pool;
        // each slot is an independent dot product, so the results (and the
        // serial RNG-driven picks they feed) are bitwise independent of
        // `degree`.
        let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(nlist);
        let first = sample[rng.bounded_u64(sample.len() as u64) as usize];
        centroids.push(self.densify(first));
        let c0 = &centroids[0];
        let mut best_sim: Vec<f32> =
            par_map_threads(&sample, degree, |&v| self.dot_dense(v, c0));
        while centroids.len() < nlist {
            let weights: Vec<f64> = best_sim
                .iter()
                .map(|&s| ((1.0 - s as f64).max(0.0)).powi(2))
                .collect();
            let total: f64 = weights.iter().sum();
            let pick = if total > 0.0 {
                let mut x = rng.f64() * total;
                let mut chosen = sample.len() - 1;
                for (si, w) in weights.iter().enumerate() {
                    x -= w;
                    if x <= 0.0 {
                        chosen = si;
                        break;
                    }
                }
                chosen
            } else {
                rng.bounded_u64(sample.len() as u64) as usize
            };
            let c = self.densify(sample[pick]);
            let sims = par_map_threads(&sample, degree, |&v| self.dot_dense(v, &c));
            for (si, s) in sims.into_iter().enumerate() {
                if s > best_sim[si] {
                    best_sim[si] = s;
                }
            }
            centroids.push(c);
        }

        // --- Lloyd iterations (spherical: renormalize means) ---
        for _ in 0..self.cfg.kmeans_iters {
            let ct = transpose(&centroids, self.dim);
            // Membership is a per-sample argmax — sharded over the pool;
            // the centroid sums below stay serial, accumulated in sample
            // order exactly as before.
            let membership: Vec<usize> = par_map_threads(&sample, degree, |&v| {
                argmax_f32(&self.cell_scores_with(&ct, nlist, v))
            });
            let mut sums = vec![vec![0.0f64; self.dim]; nlist];
            let mut counts = vec![0usize; nlist];
            for (si, &v) in sample.iter().enumerate() {
                let c = membership[si];
                counts[c] += 1;
                let (s, e) = (self.offs[v], self.offs[v + 1]);
                for p in s..e {
                    sums[c][self.dims[p] as usize] += self.vals[p] as f64;
                }
            }
            for (c, sum) in sums.iter().enumerate() {
                if counts[c] == 0 {
                    // Deterministic reseed: an empty cell jumps to a random
                    // sample vector.
                    let v = sample[rng.bounded_u64(sample.len() as u64) as usize];
                    centroids[c] = self.densify(v);
                    continue;
                }
                let norm: f64 = sum.iter().map(|x| x * x).sum::<f64>().sqrt();
                for (d, x) in sum.iter().enumerate() {
                    centroids[c][d] = if norm > 0.0 { (x / norm) as f32 } else { 0.0 };
                }
            }
        }

        // --- commit quantizer + reassign the full store ---
        self.nlist = nlist;
        self.ct = transpose(&centroids, self.dim);
        self.trained_n = n;
        // Assignment (the dominant build cost: n · nnz · nlist) is a pure
        // per-vector argmax, sharded over the pool; the grouping pass runs
        // serially in index order, so each posting list receives its
        // members in the same ascending order as the serial loop.
        let rows: Vec<usize> = (0..n).collect();
        let cells: Vec<usize> = par_map_threads(&rows, degree, |&idx| self.assign(idx));
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); nlist];
        for (idx, &cell) in cells.iter().enumerate() {
            lists[cell].push(idx as u32);
        }
        // Per-cell `(date, id)` sorts are independent of each other.
        let (dates, ids) = (&self.dates, &self.ids);
        self.lists = par_map_threads(&lists, degree, |list| {
            let mut list = list.clone();
            list.sort_unstable_by_key(|&j| (dates[j as usize], ids[j as usize]));
            list
        });
    }

    /// Dense `f32` copy of stored vector `idx`.
    fn densify(&self, idx: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        let (s, e) = (self.offs[idx], self.offs[idx + 1]);
        for p in s..e {
            out[self.dims[p] as usize] = self.vals[p];
        }
        out
    }

    /// Dot of stored sparse vector `idx` with a dense `f32` vector.
    fn dot_dense(&self, idx: usize, dense: &[f32]) -> f32 {
        let (s, e) = (self.offs[idx], self.offs[idx + 1]);
        let mut acc = 0.0f32;
        for p in s..e {
            acc += self.vals[p] * dense[self.dims[p] as usize];
        }
        acc
    }

    /// [`AnnIndex::cell_scores_sparse`] against an explicit transposed
    /// quantizer (used mid-training, before the quantizer is committed).
    fn cell_scores_with(&self, ct: &[f32], nlist: usize, idx: usize) -> Vec<f32> {
        let mut scores = vec![0.0f32; nlist];
        let (s, e) = (self.offs[idx], self.offs[idx + 1]);
        for p in s..e {
            let row = &ct[self.dims[p] as usize * nlist..][..nlist];
            let v = self.vals[p];
            for (l, c) in row.iter().enumerate() {
                scores[l] += v * c;
            }
        }
        scores
    }
}

/// `centroids[l][d]` → transposed flat `ct[d * nlist + l]`.
fn transpose(centroids: &[Vec<f32>], dim: usize) -> Vec<f32> {
    let nlist = centroids.len();
    let mut ct = vec![0.0f32; dim * nlist];
    for (l, c) in centroids.iter().enumerate() {
        for (d, &x) in c.iter().enumerate() {
            ct[d * nlist + l] = x;
        }
    }
    ct
}

/// Index of the maximum (first on ties → lowest index wins).
fn argmax_f32(xs: &[f32]) -> usize {
    let mut best = 0usize;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[inline]
fn in_range(date: i32, range: Option<(i32, i32)>) -> bool {
    match range {
        None => true,
        Some((lo, hi)) => date >= lo && date <= hi,
    }
}

/// Bounded top-k accumulator ordered by `(score desc, id asc)`.
struct TopK {
    k: usize,
    // Sorted best-first; `entries.last()` is the current worst.
    entries: Vec<Hit>,
}

impl TopK {
    fn new(k: usize) -> Self {
        Self {
            k,
            entries: Vec::with_capacity(k + 1),
        }
    }

    #[inline]
    fn offer(&mut self, score: f64, id: u64) {
        if self.entries.len() == self.k {
            let &(wid, ws) = self.entries.last().expect("k > 0");
            if !(score > ws || (score == ws && id < wid)) {
                return;
            }
        }
        let pos = self
            .entries
            .partition_point(|&(i, s)| s > score || (s == score && i < id));
        self.entries.insert(pos, (id, score));
        if self.entries.len() > self.k {
            self.entries.pop();
        }
    }

    fn into_sorted(self) -> Vec<Hit> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SentenceEmbedder;

    /// A tiny config that trains early so unit tests exercise the IVF path.
    fn small_cfg() -> AnnConfig {
        AnnConfig {
            min_train: 16,
            nlist: Some(4),
            nprobe: 4, // probe everything: candidates == whole store
            ..AnnConfig::default()
        }
    }

    fn topic_vectors(n: usize) -> Vec<(u64, i32, Vec<f64>)> {
        let e = SentenceEmbedder::new(64);
        let topics = [
            "earthquake rubble rescue survivors collapsed buildings",
            "election ballot candidate campaign votes parliament",
            "hurricane flood evacuation coastal storm damage",
        ];
        (0..n)
            .map(|i| {
                let text = format!("{} update {}", topics[i % 3], i / 3);
                (i as u64, (i % 30) as i32, e.embed_frozen(&text))
            })
            .collect()
    }

    #[test]
    fn flat_mode_is_exact() {
        let items = topic_vectors(12); // below min_train → flat
        let index = AnnIndex::build(64, small_cfg(), items.clone());
        assert!(!index.is_trained());
        for (_, _, v) in items.iter().take(4) {
            let ann = index.search(v, 5, None);
            let exact = index.search_exact(v, 5, None);
            assert_eq!(ann, exact);
        }
    }

    #[test]
    fn trained_full_probe_matches_exact() {
        let items = topic_vectors(60);
        let index = AnnIndex::build(64, small_cfg(), items.clone());
        assert!(index.is_trained());
        for (_, _, v) in items.iter().step_by(7) {
            let ann = index.search(v, 10, None);
            let exact = index.search_exact(v, 10, None);
            assert_eq!(ann, exact, "nprobe == nlist must be exhaustive");
        }
    }

    #[test]
    fn date_filter_returns_only_in_range() {
        let items = topic_vectors(60);
        let index = AnnIndex::build(64, small_cfg(), items.clone());
        let (_, _, q) = &items[0];
        for range in [(0, 9), (10, 19), (5, 5), (100, 200)] {
            let hits = index.search(q, 20, Some(range));
            for &(id, _) in &hits {
                let date = (id % 30) as i32;
                assert!(
                    date >= range.0 && date <= range.1,
                    "id {id} date {date} outside {range:?}"
                );
            }
            let exact = index.search_exact(q, 20, Some(range));
            assert_eq!(hits, exact, "full probe filtered search stays exact");
        }
        assert!(index.search(q, 20, Some((100, 200))).is_empty());
    }

    #[test]
    fn incremental_insert_is_searchable_across_epochs() {
        let items = topic_vectors(90);
        let mut index = AnnIndex::new(64, small_cfg());
        for epoch in 0..3 {
            for (id, date, v) in items.iter().skip(epoch * 30).take(30) {
                index.insert(*id, *date, v);
            }
            // Every item inserted so far is its own best match.
            for (id, _, v) in items.iter().take((epoch + 1) * 30).step_by(11) {
                let hits = index.search(v, 3, None);
                assert!(
                    hits.iter().any(|&(h, s)| h == *id && s > 0.999),
                    "epoch {epoch}: item {id} not found: {hits:?}"
                );
            }
        }
        assert!(index.retrains() >= 2, "growth must have retrained");
        assert_eq!(index.len(), 90);
    }

    #[test]
    fn deterministic_given_config() {
        let items = topic_vectors(60);
        let a = AnnIndex::build(64, small_cfg(), items.clone());
        let b = AnnIndex::build(64, small_cfg(), items.clone());
        let (_, _, q) = &items[5];
        assert_eq!(a.search(q, 10, None), b.search(q, 10, None));
        assert_eq!(a.memory_bytes(), b.memory_bytes());
    }

    #[test]
    fn zero_vectors_and_zero_queries() {
        let mut items = topic_vectors(20);
        items.push((99, 0, vec![0.0; 64])); // zero vector indexed
        let index = AnnIndex::build(64, small_cfg(), items.clone());
        assert_eq!(index.len(), 21);
        // Zero query: no hits, by definition.
        assert!(index.search(&vec![0.0; 64], 5, None).is_empty());
        assert!(index.search_exact(&vec![0.0; 64], 5, None).is_empty());
        // Normal query: the zero vector scores 0 and never outranks a
        // positive match.
        let (_, _, q) = &items[0];
        let hits = index.search(q, 3, None);
        assert!(hits.iter().all(|&(id, s)| id != 99 || s == 0.0));
    }

    #[test]
    fn single_element_corpus() {
        let e = SentenceEmbedder::new(32);
        let v = e.embed_frozen("lone sentence about a summit");
        let index = AnnIndex::build(32, AnnConfig::default(), vec![(7, 3, v.clone())]);
        let hits = index.search(&v, 5, None);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 7);
        assert!(hits[0].1 > 0.999);
        assert!(index.search(&v, 5, Some((4, 9))).is_empty());
    }

    #[test]
    fn all_identical_vectors_tie_break_by_id() {
        let e = SentenceEmbedder::new(32);
        let v = e.embed_frozen("identical text");
        let items: Vec<_> = (0..20).map(|i| (i as u64, 0, v.clone())).collect();
        let index = AnnIndex::build(32, small_cfg(), items);
        let hits = index.search(&v, 5, None);
        let ids: Vec<u64> = hits.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4], "ties resolve to ascending ids");
    }

    #[test]
    fn knn_pairs_exclude_self_and_respect_k() {
        let items = topic_vectors(30);
        let index = AnnIndex::build(64, small_cfg(), items);
        let pairs = index.knn_pairs(4);
        assert!(!pairs.is_empty());
        assert!(pairs.iter().all(|&(i, j, _)| i != j));
        for i in 0..30 {
            let deg = pairs.iter().filter(|&&(a, _, _)| a == i).count();
            assert!(deg <= 4, "row {i} has {deg} neighbors");
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_checked() {
        let mut index = AnnIndex::new(8, AnnConfig::default());
        index.insert(0, 0, &[1.0; 9]);
    }
}
