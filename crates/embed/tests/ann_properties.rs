//! Property suite for the ANN index: recall vs the brute-force reference,
//! date-filter correctness, exact re-ranking, and incremental-insert
//! equivalence — all over randomized corpora via `quickprop`.
//!
//! The corpora are *clustered* (random unit topic directions plus noise),
//! matching what hashed TF-IDF embeddings of news sentences look like: the
//! true neighbors of a query concentrate in a few coarse cells, which is
//! the regime IVF recall guarantees are about. Queries are corpus points
//! (near-duplicate retrieval, the workload `autocompress` runs).

use tl_embed::{AnnConfig, AnnIndex};
use tl_support::quickprop::{check_with, gens, Config};
use tl_support::rng::Rng;
use tl_support::{qp_assert, qp_assert_eq};

const DIM: usize = 64;

/// Unit-norm random direction.
fn unit(rng: &mut Rng, dim: usize) -> Vec<f64> {
    let mut v: Vec<f64> = (0..dim).map(|_| rng.f64() * 2.0 - 1.0).collect();
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
    v.iter_mut().for_each(|x| *x /= norm);
    v
}

/// `n` dated vectors drawn from `topics` noisy clusters over `days` days.
fn clustered_corpus(seed: u64, n: usize, topics: usize, days: i32) -> Vec<(u64, i32, Vec<f64>)> {
    let mut rng = Rng::seed_from_u64(seed);
    let dirs: Vec<Vec<f64>> = (0..topics).map(|_| unit(&mut rng, DIM)).collect();
    (0..n)
        .map(|i| {
            let t = rng.bounded_u64(topics as u64) as usize;
            let v: Vec<f64> = dirs[t]
                .iter()
                .map(|x| x + 0.25 * (rng.f64() - 0.5))
                .collect();
            let date = rng.bounded_u64(days as u64) as i32;
            (i as u64, date, v)
        })
        .collect()
}

fn recall_at_k(index: &AnnIndex, query: &[f64], k: usize, range: Option<(i32, i32)>) -> f64 {
    let exact = index.search_exact(query, k, range);
    if exact.is_empty() {
        return 1.0;
    }
    let ann = index.search(query, k, range);
    let hits = exact
        .iter()
        .filter(|(id, _)| ann.iter().any(|(a, _)| a == id))
        .count();
    hits as f64 / exact.len() as f64
}

/// Case descriptor kept tiny so counterexample output stays readable; the
/// corpus is rebuilt deterministically from it.
fn corpus_gen() -> impl tl_support::quickprop::Gen<Value = (u64, usize, usize)> {
    gens::from_fn(|rng: &mut Rng| {
        let seed = rng.next_u64();
        let n = 520 + rng.bounded_u64(500) as usize; // past default min_train
        let topics = 8 + rng.bounded_u64(16) as usize;
        (seed, n, topics)
    })
}

fn heavy() -> Config {
    // Each case builds a >512-vector index (trains the quantizer); keep the
    // debug-mode runtime bounded. QUICKPROP_CASES still overrides.
    Config {
        cases: 6,
        ..Config::default()
    }
}

#[test]
fn recall_at_10_meets_floor_at_default_config() {
    check_with(
        &heavy(),
        "ann_recall_at_10",
        corpus_gen(),
        |&(seed, n, topics)| {
            let items = clustered_corpus(seed, n, topics, 60);
            let index = AnnIndex::build(DIM, AnnConfig::default(), items.clone());
            qp_assert!(index.is_trained(), "n = {n} must train the quantizer");
            let mut total = 0.0;
            let queries: Vec<_> = items.iter().step_by(n / 25).collect();
            for (_, _, q) in &queries {
                total += recall_at_k(&index, q, 10, None);
            }
            let avg = total / queries.len() as f64;
            qp_assert!(
                avg >= 0.9,
                "recall@10 = {avg:.3} < 0.9 (n = {n}, topics = {topics})"
            );
            Ok(())
        },
    );
}

#[test]
fn date_filtered_queries_return_only_in_range_ids() {
    check_with(
        &heavy(),
        "ann_date_filter",
        corpus_gen(),
        |&(seed, n, topics)| {
            let items = clustered_corpus(seed, n, topics, 60);
            let index = AnnIndex::build(DIM, AnnConfig::default(), items.clone());
            let mut rng = Rng::seed_from_u64(seed ^ 0xDA7E);
            for probe in 0..8 {
                let lo = rng.bounded_u64(60) as i32 - 2; // occasionally empty/overhanging
                let hi = lo + rng.bounded_u64(30) as i32;
                let (_, _, q) = &items[(probe * 97) % n];
                for source in ["ann", "exact"] {
                    let hits = if source == "ann" {
                        index.search(q, 10, Some((lo, hi)))
                    } else {
                        index.search_exact(q, 10, Some((lo, hi)))
                    };
                    for (id, _) in hits {
                        let date = items[id as usize].1;
                        qp_assert!(
                            date >= lo && date <= hi,
                            "{source}: id {id} date {date} outside [{lo}, {hi}]"
                        );
                    }
                }
                let avg = recall_at_k(&index, q, 10, Some((lo, hi)));
                qp_assert!(avg >= 0.9, "filtered recall@10 = {avg:.3} in [{lo}, {hi}]");
            }
            Ok(())
        },
    );
}

#[test]
fn ann_scores_are_bitwise_exact() {
    // The IVF path may miss candidates, but every candidate it returns must
    // carry the same cosine the brute-force scan computes — exact re-rank.
    check_with(
        &heavy(),
        "ann_exact_rerank",
        corpus_gen(),
        |&(seed, n, topics)| {
            let items = clustered_corpus(seed, n, topics, 60);
            let index = AnnIndex::build(DIM, AnnConfig::default(), items.clone());
            let exact_all = |q: &[f64]| index.search_exact(q, n, None);
            for (_, _, q) in items.iter().step_by(n / 10) {
                let truth: std::collections::HashMap<u64, u64> = exact_all(q)
                    .into_iter()
                    .map(|(id, s)| (id, s.to_bits()))
                    .collect();
                for (id, s) in index.search(q, 10, None) {
                    qp_assert_eq!(
                        s.to_bits(),
                        truth[&id],
                        "score for id {id} differs from brute force"
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn results_are_sorted_score_desc_id_asc() {
    check_with(
        &heavy(),
        "ann_result_order",
        corpus_gen(),
        |&(seed, n, topics)| {
            let items = clustered_corpus(seed, n, topics, 60);
            let index = AnnIndex::build(DIM, AnnConfig::default(), items.clone());
            for (_, _, q) in items.iter().step_by(n / 10) {
                let hits = index.search(q, 25, None);
                for w in hits.windows(2) {
                    let ((id_a, s_a), (id_b, s_b)) = (w[0], w[1]);
                    qp_assert!(
                        s_a > s_b || (s_a == s_b && id_a < id_b),
                        "unordered: ({id_a}, {s_a}) before ({id_b}, {s_b})"
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn incremental_inserts_match_bulk_build_recall() {
    check_with(
        &heavy(),
        "ann_incremental",
        corpus_gen(),
        |&(seed, n, topics)| {
            let items = clustered_corpus(seed, n, topics, 60);
            // Feed the index in four publish epochs instead of one build.
            let mut index = AnnIndex::new(DIM, AnnConfig::default());
            for chunk in items.chunks(n.div_ceil(4)) {
                for (id, date, v) in chunk {
                    index.insert(*id, *date, v);
                }
            }
            qp_assert_eq!(index.len(), n);
            qp_assert!(index.is_trained(), "incremental path must train too");
            let mut total = 0.0;
            let queries: Vec<_> = items.iter().step_by(n / 25).collect();
            for (id, _, q) in &queries {
                let hits = index.search(q, 10, None);
                qp_assert!(
                    hits.iter().any(|(h, s)| h == id && *s > 0.999),
                    "inserted item {id} is not its own near-exact match"
                );
                total += recall_at_k(&index, q, 10, None);
            }
            let avg = total / queries.len() as f64;
            qp_assert!(avg >= 0.9, "incremental recall@10 = {avg:.3} < 0.9");
            Ok(())
        },
    );
}

/// `(id, exact bit pattern of the score)` — the comparison key for the
/// thread-count differentials: equality means bitwise-identical output.
fn hits_bits(hits: &[(u64, f64)]) -> Vec<(u64, u64)> {
    hits.iter().map(|&(id, s)| (id, s.to_bits())).collect()
}

/// `AnnConfig.threads` pins the parallelism degree of every bulk stage
/// (k-means assignment, full-store reassignment, query fan-out,
/// `knn_pairs`); `1` is fully serial on the calling thread. This is the
/// in-process axis of the thread-count differential — `scripts/ci.sh`
/// additionally runs the whole suite under `TL_POOL_THREADS=1` and `=8`
/// for the process-level axis (global pool size).
fn cfg_threads(threads: usize) -> AnnConfig {
    AnnConfig {
        threads,
        nlist: Some(16),
        nprobe: 6,
        min_train: 256,
        ..AnnConfig::default()
    }
}

/// Build + query at parallelism degrees {1, 2, 8} must be **bitwise
/// identical**: same posting structure, same hit ids, same score bits —
/// for bulk builds, epoch-wise incremental inserts, unfiltered and
/// date-filtered queries, and `knn_pairs` rows.
#[test]
fn thread_count_differential_bulk_and_query() {
    let items = clustered_corpus(0xD1FF_5EED, 800, 10, 45);
    let serial = AnnIndex::build(DIM, cfg_threads(1), items.clone());
    assert!(serial.is_trained());
    let serial_pairs = serial.knn_pairs(4);
    for threads in [2usize, 8] {
        let par = AnnIndex::build(DIM, cfg_threads(threads), items.clone());
        assert_eq!(par.len(), serial.len());
        assert_eq!(
            par.memory_bytes(),
            serial.memory_bytes(),
            "threads={threads}: posting structure diverged"
        );
        for (qi, (_, _, q)) in items.iter().step_by(31).enumerate() {
            assert_eq!(
                hits_bits(&par.search(q, 10, None)),
                hits_bits(&serial.search(q, 10, None)),
                "threads={threads}, query {qi}: unfiltered hits diverged"
            );
            for range in [(10, 30), (0, 4), (44, 44), (60, 90)] {
                assert_eq!(
                    hits_bits(&par.search(q, 10, Some(range))),
                    hits_bits(&serial.search(q, 10, Some(range))),
                    "threads={threads}, query {qi}, range {range:?}: filtered hits diverged"
                );
            }
        }
        let par_pairs = par.knn_pairs(4);
        assert_eq!(par_pairs.len(), serial_pairs.len());
        assert!(
            par_pairs
                .iter()
                .zip(&serial_pairs)
                .all(|(&(a, b, s), &(c, d, t))| a == c && b == d && s.to_bits() == t.to_bits()),
            "threads={threads}: knn_pairs diverged"
        );
    }
}

/// Same differential over the *incremental* path: epoch-wise inserts (with
/// the mid-stream retrains they trigger) must also be degree-independent.
#[test]
fn thread_count_differential_incremental_inserts() {
    let items = clustered_corpus(0x1AC4_E5EE_D01u64, 700, 8, 30);
    let feed = |threads: usize| {
        let mut index = AnnIndex::new(DIM, cfg_threads(threads));
        for chunk in items.chunks(items.len().div_ceil(4)) {
            for (id, date, v) in chunk {
                index.insert(*id, *date, v);
            }
        }
        index
    };
    let serial = feed(1);
    assert!(serial.is_trained() && serial.retrains() >= 1);
    for threads in [2usize, 8] {
        let par = feed(threads);
        assert_eq!(par.retrains(), serial.retrains());
        for (qi, (_, _, q)) in items.iter().step_by(43).enumerate() {
            assert_eq!(
                hits_bits(&par.search(q, 8, None)),
                hits_bits(&serial.search(q, 8, None)),
                "threads={threads}, query {qi}: incremental hits diverged"
            );
            assert_eq!(
                hits_bits(&par.search(q, 8, Some((5, 20)))),
                hits_bits(&serial.search(q, 8, Some((5, 20)))),
                "threads={threads}, query {qi}: filtered incremental hits diverged"
            );
        }
    }
}

/// Randomized flavor of the differential: quickprop corpora, serial vs a
/// generated degree.
#[test]
fn thread_count_differential_randomized() {
    check_with(
        &heavy(),
        "ann_thread_differential",
        gens::from_fn(|rng: &mut Rng| {
            let seed = rng.next_u64();
            let n = 520 + rng.bounded_u64(300) as usize;
            let topics = 6 + rng.bounded_u64(10) as usize;
            let threads = 2 + rng.bounded_u64(7) as usize; // 2..=8
            (seed, n, topics, threads)
        }),
        |&(seed, n, topics, threads)| {
            let items = clustered_corpus(seed, n, topics, 60);
            let serial = AnnIndex::build(DIM, cfg_threads(1), items.clone());
            let par = AnnIndex::build(DIM, cfg_threads(threads), items.clone());
            for (_, _, q) in items.iter().step_by(n / 12) {
                qp_assert_eq!(
                    hits_bits(&par.search(q, 10, None)),
                    hits_bits(&serial.search(q, 10, None)),
                    "threads = {threads}"
                );
                qp_assert_eq!(
                    hits_bits(&par.search(q, 10, Some((15, 40)))),
                    hits_bits(&serial.search(q, 10, Some((15, 40)))),
                    "threads = {threads}, filtered"
                );
            }
            Ok(())
        },
    );
}

/// Fixed-seed differential gate for CI: one pinned corpus, three invariants
/// that must hold on every machine and every run —
/// 1. bulk build and epoch-wise inserts are both searchable with high
///    recall on the same pinned corpus,
/// 2. probing every cell (`nprobe = nlist`) reproduces `search_exact`
///    bit-for-bit, filtered and unfiltered,
/// 3. two identical builds answer identically (full determinism).
#[test]
fn fixed_seed_differential() {
    let items = clustered_corpus(0x57AB1E_5EED, 700, 12, 45);
    let cfg = AnnConfig::default();
    let bulk = AnnIndex::build(DIM, cfg.clone(), items.clone());
    let again = AnnIndex::build(DIM, cfg.clone(), items.clone());
    let full_probe = AnnIndex::build(
        DIM,
        AnnConfig {
            nlist: Some(16),
            nprobe: 16,
            ..cfg.clone()
        },
        items.clone(),
    );
    for (i, (_, _, q)) in items.iter().step_by(37).enumerate() {
        let hits = bulk.search(q, 10, None);
        assert_eq!(hits, again.search(q, 10, None), "query {i}: nondeterminism");
        assert_eq!(
            full_probe.search(q, 10, None),
            full_probe.search_exact(q, 10, None),
            "query {i}: full probe must be exhaustive"
        );
        let range = Some((10, 30));
        assert_eq!(
            full_probe.search(q, 10, range),
            full_probe.search_exact(q, 10, range),
            "query {i}: full probe with date filter must be exhaustive"
        );
    }
}
