//! Dataset (de)serialization: save generated datasets to JSON and reload
//! them, so experiment runs can pin an exact corpus (or ship one for
//! inspection) independent of generator-version drift.

use crate::model::Dataset;
use std::fs;
use std::io;
use std::path::Path;
use tl_support::json::{FromJson, Json, ToJson};

/// Serialize a dataset to compact JSON at `path` (creates parent dirs).
pub fn save_json(dataset: &Dataset, path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, dataset.to_json().to_string_compact())
}

/// Load a dataset previously written by [`save_json`].
pub fn load_json(path: &Path) -> io::Result<Dataset> {
    let json = fs::read_to_string(path)?;
    let value = Json::parse(&json).map_err(io::Error::other)?;
    Dataset::from_json(&value).map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};

    #[test]
    fn roundtrip() {
        let ds = generate(&SynthConfig::tiny());
        let path = std::env::temp_dir().join(format!("tl_ds_{}.json", std::process::id()));
        save_json(&ds, &path).unwrap();
        let back = load_json(&path).unwrap();
        fs::remove_file(&path).unwrap();
        assert_eq!(back.name, ds.name);
        assert_eq!(back.topics.len(), ds.topics.len());
        for (a, b) in ds.topics.iter().zip(&back.topics) {
            assert_eq!(a.query, b.query);
            assert_eq!(a.articles.len(), b.articles.len());
            assert_eq!(a.articles[0].sentences, b.articles[0].sentences);
            assert_eq!(a.timelines[0].entries, b.timelines[0].entries);
        }
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_json(Path::new("/nonexistent/nope.json")).is_err());
    }

    #[test]
    fn load_garbage_errors() {
        let path = std::env::temp_dir().join(format!("tl_garbage_{}.json", std::process::id()));
        fs::write(&path, "{not json").unwrap();
        let r = load_json(&path);
        fs::remove_file(&path).unwrap();
        assert!(r.is_err());
    }
}
