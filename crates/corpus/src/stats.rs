//! Dataset overview statistics — regenerates Table 4 of the paper.

use crate::model::Dataset;

/// Aggregate statistics in the shape of Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of topics.
    pub num_topics: usize,
    /// Number of ground-truth timelines.
    pub num_timelines: usize,
    /// Average number of articles per timeline (per evaluation unit; each
    /// unit sees its whole topic corpus — Table 4 counts it that way).
    pub avg_docs: f64,
    /// Average number of corpus sentences per timeline.
    pub avg_sents: f64,
    /// Average corpus duration in days per timeline.
    pub avg_duration_days: f64,
}

/// Compute Table-4-style statistics.
pub fn dataset_stats(dataset: &Dataset) -> DatasetStats {
    let mut docs = 0usize;
    let mut sents = 0usize;
    let mut duration = 0i64;
    let mut units = 0usize;
    for topic in &dataset.topics {
        let n = topic.timelines.len();
        units += n;
        docs += topic.articles.len() * n;
        sents += topic.num_sentences() * n;
        if let Some((lo, hi)) = topic.span() {
            duration += (hi.diff_days(lo) as i64 + 1) * n as i64;
        }
    }
    let k = units.max(1) as f64;
    DatasetStats {
        name: dataset.name.clone(),
        num_topics: dataset.topics.len(),
        num_timelines: units,
        avg_docs: docs as f64 / k,
        avg_sents: sents as f64 / k,
        avg_duration_days: duration as f64 / k,
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<12} topics={:<3} timelines={:<3} avg_docs={:<8.0} avg_sents={:<9.0} avg_duration={:.0}d",
            self.name, self.num_topics, self.num_timelines, self.avg_docs,
            self.avg_sents, self.avg_duration_days
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};

    #[test]
    fn tiny_stats_consistent() {
        let ds = generate(&SynthConfig::tiny());
        let s = dataset_stats(&ds);
        assert_eq!(s.num_topics, 2);
        assert_eq!(s.num_timelines, 3);
        assert!(s.avg_docs > 0.0);
        assert!(s.avg_sents > s.avg_docs); // multiple sentences per doc
        assert!(s.avg_duration_days > 0.0 && s.avg_duration_days <= 90.0);
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset {
            name: "empty".into(),
            topics: vec![],
        };
        let s = dataset_stats(&ds);
        assert_eq!(s.num_timelines, 0);
        assert_eq!(s.avg_docs, 0.0);
    }

    #[test]
    fn scaled_timeline17_approaches_table4_ratios() {
        // At scale 0.05, sentences/doc must still be ≈ 50 and duration ≈ 242.
        let ds = generate(&SynthConfig::timeline17().with_scale(0.05));
        let s = dataset_stats(&ds);
        let sents_per_doc = s.avg_sents / s.avg_docs;
        assert!(
            (35.0..=65.0).contains(&sents_per_doc),
            "sents/doc = {sents_per_doc}"
        );
        assert!(
            (150.0..=242.0).contains(&s.avg_duration_days),
            "duration = {}",
            s.avg_duration_days
        );
        assert_eq!(s.num_timelines, 19);
        assert_eq!(s.num_topics, 9);
    }
}
