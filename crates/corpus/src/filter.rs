//! Keyword filtering of dated-sentence corpora.
//!
//! §2.5 / §3.1.3 of the paper: the TILSE implementation *"filtered
//! sentences with predefined keywords to reduce N by over one order of
//! magnitude"* — without this, the submodular framework cannot run on the
//! full Crisis corpus at all. The paper runs its TILSE comparison (Table 7)
//! on exactly this filtered sentence pool, so the filter is part of the
//! reproduction surface.
//!
//! A sentence passes if it contains at least `min_hits` of the query's
//! analyzed terms (stemmed, stopword-filtered).

use crate::model::DatedSentence;
use tl_nlp::{AnalysisOptions, Analyzer};

/// Keyword filter configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeywordFilter {
    /// Minimum number of distinct query terms a sentence must contain.
    pub min_hits: usize,
}

impl Default for KeywordFilter {
    fn default() -> Self {
        Self { min_hits: 1 }
    }
}

impl KeywordFilter {
    /// Filter `sentences` against the topic `query`, returning the
    /// surviving subset (clones). An empty analyzed query passes everything
    /// (no keywords = no filter), matching the tilse behaviour of running
    /// unfiltered when no keyword file is configured.
    pub fn filter(&self, sentences: &[DatedSentence], query: &str) -> Vec<DatedSentence> {
        let mut analyzer = Analyzer::new(AnalysisOptions::retrieval());
        let mut query_terms = analyzer.analyze(query);
        query_terms.sort_unstable();
        query_terms.dedup();
        if query_terms.is_empty() {
            return sentences.to_vec();
        }
        sentences
            .iter()
            .filter(|s| {
                let mut terms = analyzer.analyze_frozen(&s.text);
                terms.sort_unstable();
                terms.dedup();
                let hits = terms
                    .iter()
                    .filter(|t| query_terms.binary_search(t).is_ok())
                    .count();
                hits >= self.min_hits
            })
            .cloned()
            .collect()
    }

    /// Fraction of the corpus surviving the filter (diagnostics; the paper
    /// reports ~10% for its keyword lists).
    pub fn survival_rate(&self, sentences: &[DatedSentence], query: &str) -> f64 {
        if sentences.is_empty() {
            return 0.0;
        }
        self.filter(sentences, query).len() as f64 / sentences.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tl_temporal::Date;

    fn sent(text: &str) -> DatedSentence {
        let d = Date::from_days(17000);
        DatedSentence {
            date: d,
            pub_date: d,
            article: 0,
            sentence_index: 0,
            text: text.to_string(),
            from_mention: false,
        }
    }

    #[test]
    fn keeps_matching_sentences() {
        let corpus = vec![
            sent("the summit between leaders was historic"),
            sent("markets rallied on earnings"),
            sent("nuclear summit talks continue"),
        ];
        let kept = KeywordFilter::default().filter(&corpus, "summit nuclear");
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().all(|s| s.text.contains("summit")));
    }

    #[test]
    fn min_hits_two_is_stricter() {
        let corpus = vec![
            sent("the summit between leaders was historic"),
            sent("nuclear summit talks continue"),
        ];
        let strict = KeywordFilter { min_hits: 2 };
        let kept = strict.filter(&corpus, "summit nuclear");
        assert_eq!(kept.len(), 1);
        assert!(kept[0].text.contains("nuclear"));
    }

    #[test]
    fn stemming_matches_inflections() {
        let corpus = vec![sent("negotiations stalled again today")];
        let kept = KeywordFilter::default().filter(&corpus, "negotiation");
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn empty_query_passes_everything() {
        let corpus = vec![sent("anything at all")];
        let kept = KeywordFilter::default().filter(&corpus, "");
        assert_eq!(kept.len(), 1);
        // Pure stopwords analyze to nothing: same behaviour.
        let kept = KeywordFilter::default().filter(&corpus, "the of and");
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn survival_rate() {
        let corpus = vec![
            sent("summit talks"),
            sent("unrelated content"),
            sent("more summit news"),
            sent("weather report"),
        ];
        let rate = KeywordFilter::default().survival_rate(&corpus, "summit");
        assert!((rate - 0.5).abs() < 1e-12);
        assert_eq!(KeywordFilter::default().survival_rate(&[], "summit"), 0.0);
    }
}
