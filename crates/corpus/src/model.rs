//! The shared data model: articles, timelines, topics, datasets.

use tl_support::json::{obj, FromJson, Json, JsonError, ToJson};
use tl_temporal::Date;

/// A news article: publication date plus pre-split sentences.
#[derive(Debug, Clone)]
pub struct Article {
    /// Stable id within its topic corpus.
    pub id: usize,
    /// Publication date.
    pub pub_date: Date,
    /// Sentences in document order.
    pub sentences: Vec<String>,
}

impl Article {
    /// Full text (sentences joined by spaces).
    pub fn text(&self) -> String {
        self.sentences.join(" ")
    }
}

/// A timeline: chronologically ordered `(date, daily summary)` entries
/// (Definition 1 of the paper).
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Entries sorted by date; each date carries one or more sentences.
    pub entries: Vec<(Date, Vec<String>)>,
}

impl Timeline {
    /// Build from entries, sorting by date and merging duplicate dates.
    pub fn new(mut entries: Vec<(Date, Vec<String>)>) -> Self {
        entries.sort_by_key(|(d, _)| *d);
        let mut merged: Vec<(Date, Vec<String>)> = Vec::with_capacity(entries.len());
        for (d, sents) in entries {
            match merged.last_mut() {
                Some((last, acc)) if *last == d => acc.extend(sents),
                _ => merged.push((d, sents)),
            }
        }
        Self { entries: merged }
    }

    /// The selected dates in chronological order.
    pub fn dates(&self) -> Vec<Date> {
        self.entries.iter().map(|(d, _)| *d).collect()
    }

    /// Number of dates.
    pub fn num_dates(&self) -> usize {
        self.entries.len()
    }

    /// Total number of summary sentences.
    pub fn num_sentences(&self) -> usize {
        self.entries.iter().map(|(_, s)| s.len()).sum()
    }

    /// Average sentences per date — the paper sets the generation parameter
    /// `N` to this value rounded (§3.1.3).
    pub fn avg_sentences_per_date(&self) -> f64 {
        if self.entries.is_empty() {
            0.0
        } else {
            self.num_sentences() as f64 / self.num_dates() as f64
        }
    }

    /// The `N` hyper-parameter derived from this ground truth: rounded
    /// average sentences per date, at least 1.
    pub fn target_sentences_per_date(&self) -> usize {
        (self.avg_sentences_per_date().round() as usize).max(1)
    }

    /// First and last date, if non-empty.
    pub fn span(&self) -> Option<(Date, Date)> {
        match (self.entries.first(), self.entries.last()) {
            (Some((a, _)), Some((b, _))) => Some((*a, *b)),
            _ => None,
        }
    }

    /// View as the `&[(Date, Vec<String>)]` slice the evaluators take.
    pub fn as_slice(&self) -> &[(Date, Vec<String>)] {
        &self.entries
    }
}

/// A topic: its article corpus, topic query, and ground-truth timelines
/// (one per news agency in the original datasets).
#[derive(Debug, Clone)]
pub struct TopicCorpus {
    /// Topic name, e.g. `"egypt-crisis"`.
    pub name: String,
    /// The topic query `q` (keywords) used for W4/BM25 relevance.
    pub query: String,
    /// The article pool shared by all of this topic's timelines.
    pub articles: Vec<Article>,
    /// Journalist ground-truth timelines.
    pub timelines: Vec<Timeline>,
}

impl TopicCorpus {
    /// Total sentences in the article pool.
    pub fn num_sentences(&self) -> usize {
        self.articles.iter().map(|a| a.sentences.len()).sum()
    }

    /// Publication-date span of the corpus.
    pub fn span(&self) -> Option<(Date, Date)> {
        let min = self.articles.iter().map(|a| a.pub_date).min()?;
        let max = self.articles.iter().map(|a| a.pub_date).max()?;
        Some((min, max))
    }
}

/// A full dataset (Timeline17 or Crisis shaped).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name.
    pub name: String,
    /// Topic corpora.
    pub topics: Vec<TopicCorpus>,
}

impl Dataset {
    /// Iterate evaluation units: each ground-truth timeline paired with its
    /// topic corpus (the granularity of every table in the paper).
    pub fn eval_units(&self) -> impl Iterator<Item = EvalUnit<'_>> {
        self.topics.iter().flat_map(|topic| {
            topic
                .timelines
                .iter()
                .enumerate()
                .map(move |(i, timeline)| EvalUnit {
                    topic,
                    timeline,
                    timeline_index: i,
                })
        })
    }

    /// Number of evaluation units (= number of ground-truth timelines).
    pub fn num_timelines(&self) -> usize {
        self.topics.iter().map(|t| t.timelines.len()).sum()
    }
}

// JSON representations match what the serde derives produced (structs as
// objects keyed by field name, tuples as arrays, `Date` as a bare epoch-day
// number), so datasets saved by earlier versions still load.
impl ToJson for Article {
    fn to_json(&self) -> Json {
        obj(vec![
            ("id", self.id.to_json()),
            ("pub_date", self.pub_date.to_json()),
            ("sentences", self.sentences.to_json()),
        ])
    }
}

impl FromJson for Article {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            id: usize::from_json(v.field("id")?)?,
            pub_date: Date::from_json(v.field("pub_date")?)?,
            sentences: Vec::from_json(v.field("sentences")?)?,
        })
    }
}

impl ToJson for Timeline {
    fn to_json(&self) -> Json {
        obj(vec![("entries", self.entries.to_json())])
    }
}

impl FromJson for Timeline {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            entries: Vec::from_json(v.field("entries")?)?,
        })
    }
}

impl ToJson for TopicCorpus {
    fn to_json(&self) -> Json {
        obj(vec![
            ("name", self.name.to_json()),
            ("query", self.query.to_json()),
            ("articles", self.articles.to_json()),
            ("timelines", self.timelines.to_json()),
        ])
    }
}

impl FromJson for TopicCorpus {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            name: String::from_json(v.field("name")?)?,
            query: String::from_json(v.field("query")?)?,
            articles: Vec::from_json(v.field("articles")?)?,
            timelines: Vec::from_json(v.field("timelines")?)?,
        })
    }
}

impl ToJson for Dataset {
    fn to_json(&self) -> Json {
        obj(vec![
            ("name", self.name.to_json()),
            ("topics", self.topics.to_json()),
        ])
    }
}

impl FromJson for Dataset {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            name: String::from_json(v.field("name")?)?,
            topics: Vec::from_json(v.field("topics")?)?,
        })
    }
}

/// One evaluation unit: a topic corpus + one of its ground-truth timelines.
#[derive(Debug, Clone, Copy)]
pub struct EvalUnit<'a> {
    /// The shared topic corpus.
    pub topic: &'a TopicCorpus,
    /// The ground-truth timeline to evaluate against.
    pub timeline: &'a Timeline,
    /// Index of the timeline within the topic.
    pub timeline_index: usize,
}

/// A sentence paired with a day-level date (Definition 2): either its
/// article's publication date or a date its text mentions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatedSentence {
    /// The paired date.
    pub date: Date,
    /// Publication date of the source article.
    pub pub_date: Date,
    /// Index of the source article in the topic corpus.
    pub article: usize,
    /// Index of the sentence within its article.
    pub sentence_index: usize,
    /// The sentence text.
    pub text: String,
    /// True if `date` came from a mention in the text (false: pub date).
    pub from_mention: bool,
}

/// The interface every timeline-summarization method in this workspace
/// implements (WILSON and all baselines), so the experiment harness can
/// treat them uniformly.
///
/// Inputs follow §3.1.3 of the paper: the dated-sentence corpus, the topic
/// query `q`, the number of dates `T` and sentences per date `N` (both
/// derived from the ground-truth timeline in the standard protocol).
///
/// Generators are `Send + Sync` so the evaluation harness can fan units
/// out across threads; every implementation in this workspace is plain
/// configuration data (methods that need randomness seed a local RNG
/// inside `generate`).
pub trait TimelineGenerator: Send + Sync {
    /// Human-readable method name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// Generate a timeline with `t` dates and up to `n` sentences per date.
    fn generate(&self, sentences: &[DatedSentence], query: &str, t: usize, n: usize) -> Timeline;

    /// Like [`TimelineGenerator::generate`], but with the corpus already
    /// tokenized: `analysis` holds one retrieval-token row per sentence of
    /// `sentences` (same order) plus the analyzer owning the shared
    /// vocabulary. Implementations that override this skip their own
    /// tokenization pass and **must return exactly what `generate` would**
    /// — the harness relies on the two paths being interchangeable. The
    /// default ignores `analysis` and re-analyzes.
    fn generate_analyzed(
        &self,
        analysis: &crate::analysis::CorpusAnalysis,
        sentences: &[DatedSentence],
        query: &str,
        t: usize,
        n: usize,
    ) -> Timeline {
        let _ = analysis;
        self.generate(sentences, query, t, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Date {
        s.parse().unwrap()
    }

    #[test]
    fn timeline_sorts_and_merges() {
        let t = Timeline::new(vec![
            (d("2018-06-12"), vec!["b".into()]),
            (d("2018-03-08"), vec!["a".into()]),
            (d("2018-06-12"), vec!["c".into()]),
        ]);
        assert_eq!(t.num_dates(), 2);
        assert_eq!(t.dates(), vec![d("2018-03-08"), d("2018-06-12")]);
        assert_eq!(t.entries[1].1, vec!["b".to_string(), "c".to_string()]);
    }

    #[test]
    fn timeline_stats() {
        let t = Timeline::new(vec![
            (d("2018-03-08"), vec!["a".into(), "b".into()]),
            (d("2018-06-12"), vec!["c".into()]),
        ]);
        assert_eq!(t.num_sentences(), 3);
        assert!((t.avg_sentences_per_date() - 1.5).abs() < 1e-12);
        assert_eq!(t.target_sentences_per_date(), 2); // 1.5 rounds to 2
        assert_eq!(t.span(), Some((d("2018-03-08"), d("2018-06-12"))));
    }

    #[test]
    fn empty_timeline() {
        let t = Timeline::default();
        assert_eq!(t.num_dates(), 0);
        assert_eq!(t.avg_sentences_per_date(), 0.0);
        assert_eq!(t.target_sentences_per_date(), 1);
        assert_eq!(t.span(), None);
    }

    #[test]
    fn eval_units_enumerate_all_timelines() {
        let topic = |name: &str, n: usize| TopicCorpus {
            name: name.into(),
            query: String::new(),
            articles: vec![],
            timelines: (0..n).map(|_| Timeline::default()).collect(),
        };
        let ds = Dataset {
            name: "test".into(),
            topics: vec![topic("a", 2), topic("b", 3)],
        };
        assert_eq!(ds.num_timelines(), 5);
        let units: Vec<_> = ds.eval_units().collect();
        assert_eq!(units.len(), 5);
        assert_eq!(units[0].topic.name, "a");
        assert_eq!(units[4].timeline_index, 2);
    }

    #[test]
    fn corpus_span() {
        let c = TopicCorpus {
            name: "x".into(),
            query: String::new(),
            articles: vec![
                Article {
                    id: 0,
                    pub_date: d("2011-02-01"),
                    sentences: vec!["s".into()],
                },
                Article {
                    id: 1,
                    pub_date: d("2011-01-01"),
                    sentences: vec!["t".into(), "u".into()],
                },
            ],
            timelines: vec![],
        };
        assert_eq!(c.span(), Some((d("2011-01-01"), d("2011-02-01"))));
        assert_eq!(c.num_sentences(), 3);
    }
}
