//! Loader for the original l3s on-disk dataset layout.
//!
//! The Timeline17 / Crisis release (http://l3s.de/~gtran/timeline/) ships
//! per-topic directories:
//!
//! ```text
//! <root>/<topic>/InputDocs/<YYYY-MM-DD>/<doc>.txt   # articles by pub date
//! <root>/<topic>/timelines/<source>.txt             # ground-truth timelines
//! ```
//!
//! Timeline files interleave date lines with daily-summary sentences,
//! blocks separated by dashed lines:
//!
//! ```text
//! 2011-01-25
//! Protesters take to the streets of Cairo.
//! --------------------------------
//! 2011-02-11
//! Mubarak steps down.
//! --------------------------------
//! ```
//!
//! This loader is tolerant: article files may hold one sentence per line or
//! raw paragraphs (then split with [`tl_nlp::split_sentences`]); unparsable
//! entries are skipped with a count in the returned report. The synthetic
//! generator is the default data source — this exists so the real corpora
//! drop in without code changes.

use crate::model::{Article, Dataset, Timeline, TopicCorpus};
use std::fs;
use std::path::Path;
use tl_temporal::Date;

/// What the loader skipped, for transparency.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct LoadReport {
    /// Article files whose date directory failed to parse.
    pub skipped_docs: usize,
    /// Timeline blocks whose date line failed to parse.
    pub skipped_blocks: usize,
}

/// Load a dataset from an l3s-layout directory tree.
///
/// Returns `Ok((dataset, report))`; IO errors abort, format oddities are
/// skipped and counted.
pub fn load_l3s(root: &Path, name: &str) -> std::io::Result<(Dataset, LoadReport)> {
    let mut report = LoadReport::default();
    let mut topics = Vec::new();
    let mut topic_dirs: Vec<_> = fs::read_dir(root)?
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .map(|e| e.path())
        .collect();
    topic_dirs.sort();
    for dir in topic_dirs {
        let topic_name = dir
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut articles = Vec::new();
        let input_docs = dir.join("InputDocs");
        if input_docs.is_dir() {
            let mut date_dirs: Vec<_> = fs::read_dir(&input_docs)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            date_dirs.sort();
            for date_dir in date_dirs {
                let date_str = date_dir
                    .file_name()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default();
                let Ok(pub_date) = date_str.parse::<Date>() else {
                    report.skipped_docs += 1;
                    continue;
                };
                let mut files: Vec<_> = fs::read_dir(&date_dir)?
                    .filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| p.is_file())
                    .collect();
                files.sort();
                for file in files {
                    let text = fs::read_to_string(&file)?;
                    let sentences = split_article(&text);
                    if sentences.is_empty() {
                        report.skipped_docs += 1;
                        continue;
                    }
                    articles.push(Article {
                        id: articles.len(),
                        pub_date,
                        sentences,
                    });
                }
            }
        }
        let mut timelines = Vec::new();
        let tl_dir = dir.join("timelines");
        if tl_dir.is_dir() {
            let mut files: Vec<_> = fs::read_dir(&tl_dir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_file())
                .collect();
            files.sort();
            for file in files {
                let text = fs::read_to_string(&file)?;
                let (tl, skipped) = parse_timeline(&text);
                report.skipped_blocks += skipped;
                if tl.num_dates() > 0 {
                    timelines.push(tl);
                }
            }
        }
        // Query defaults to the topic directory name with separators spaced.
        let query = topic_name.replace(['_', '-'], " ");
        topics.push(TopicCorpus {
            name: topic_name,
            query,
            articles,
            timelines,
        });
    }
    Ok((
        Dataset {
            name: name.to_string(),
            topics,
        },
        report,
    ))
}

/// Split an article file into sentences: each non-empty line is run through
/// the sentence splitter, so both one-sentence-per-line files and raw
/// paragraph files come out right.
fn split_article(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .flat_map(tl_nlp::split_sentences)
        .collect()
}

/// Parse a timeline file; returns the timeline and the number of skipped
/// blocks.
fn parse_timeline(text: &str) -> (Timeline, usize) {
    let mut entries: Vec<(Date, Vec<String>)> = Vec::new();
    let mut skipped = 0usize;
    let mut current: Option<(Date, Vec<String>)> = None;
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if line.chars().all(|c| c == '-') && line.len() >= 4 {
            if let Some(e) = current.take() {
                if e.1.is_empty() {
                    skipped += 1;
                } else {
                    entries.push(e);
                }
            }
            continue;
        }
        if let Ok(date) = line.parse::<Date>() {
            if let Some(e) = current.take() {
                if e.1.is_empty() {
                    skipped += 1;
                } else {
                    entries.push(e);
                }
            }
            current = Some((date, Vec::new()));
        } else if let Some((_, sents)) = current.as_mut() {
            sents.push(line.to_string());
        } else {
            skipped += 1;
        }
    }
    if let Some(e) = current.take() {
        if e.1.is_empty() {
            skipped += 1;
        } else {
            entries.push(e);
        }
    }
    (Timeline::new(entries), skipped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_timeline_blocks() {
        let text = "\
2011-01-25
Protesters take to the streets of Cairo.
Police respond with tear gas.
--------------------------------
2011-02-11
Mubarak steps down.
--------------------------------
";
        let (tl, skipped) = parse_timeline(text);
        assert_eq!(skipped, 0);
        assert_eq!(tl.num_dates(), 2);
        assert_eq!(tl.entries[0].1.len(), 2);
        assert_eq!(tl.entries[1].1, vec!["Mubarak steps down.".to_string()]);
    }

    #[test]
    fn parse_timeline_skips_garbage() {
        let text = "\
not a date line
2011-01-25
A summary sentence.
2011-99-99
2011-02-11
Another summary.
";
        let (tl, skipped) = parse_timeline(text);
        // "not a date line" before any date is skipped; "2011-99-99" is an
        // unparsable date treated as a summary line of the 01-25 block.
        assert!(skipped >= 1);
        assert_eq!(tl.num_dates(), 2);
    }

    #[test]
    fn split_article_line_mode_vs_paragraph_mode() {
        let per_line = "First sentence.\nSecond sentence.\n";
        assert_eq!(split_article(per_line).len(), 2);
        let paragraph = "First sentence. Second sentence. Third one here.";
        assert_eq!(split_article(paragraph).len(), 3);
        assert!(split_article("  \n ").is_empty());
    }

    #[test]
    fn load_l3s_roundtrip() {
        let root = std::env::temp_dir().join(format!("tl_l3s_test_{}", std::process::id()));
        let topic = root.join("egypt_crisis");
        fs::create_dir_all(topic.join("InputDocs/2011-01-25")).unwrap();
        fs::create_dir_all(topic.join("timelines")).unwrap();
        fs::write(
            topic.join("InputDocs/2011-01-25/doc1.txt"),
            "Protests erupted in Cairo. Thousands marched downtown.\n",
        )
        .unwrap();
        fs::write(
            topic.join("timelines/bbc.txt"),
            "2011-01-25\nProtests erupt across Egypt.\n----\n",
        )
        .unwrap();
        // A malformed date directory must be skipped, not fatal.
        fs::create_dir_all(topic.join("InputDocs/not-a-date")).unwrap();

        let (ds, report) = load_l3s(&root, "test").unwrap();
        fs::remove_dir_all(&root).unwrap();

        assert_eq!(ds.topics.len(), 1);
        let t = &ds.topics[0];
        assert_eq!(t.name, "egypt_crisis");
        assert_eq!(t.query, "egypt crisis");
        assert_eq!(t.articles.len(), 1);
        assert_eq!(t.articles[0].sentences.len(), 2);
        assert_eq!(t.timelines.len(), 1);
        assert_eq!(t.timelines[0].num_dates(), 1);
        assert_eq!(report.skipped_docs, 1);
    }
}

/// Export a dataset to the l3s on-disk layout (inverse of [`load_l3s`]),
/// so synthetic corpora can be materialized for inspection or for tools
/// that consume the original format. One file per article, named
/// `doc<id>.txt`, one sentence per line; timelines as
/// `timelines/timeline<k>.txt` in the dashed-block format.
pub fn export_l3s(dataset: &crate::model::Dataset, root: &Path) -> std::io::Result<()> {
    for topic in &dataset.topics {
        let tdir = root.join(&topic.name);
        for article in &topic.articles {
            let ddir = tdir.join("InputDocs").join(article.pub_date.to_string());
            fs::create_dir_all(&ddir)?;
            fs::write(
                ddir.join(format!("doc{}.txt", article.id)),
                article.sentences.join("\n") + "\n",
            )?;
        }
        let tldir = tdir.join("timelines");
        fs::create_dir_all(&tldir)?;
        for (k, tl) in topic.timelines.iter().enumerate() {
            let mut out = String::new();
            for (date, sents) in &tl.entries {
                out.push_str(&date.to_string());
                out.push('\n');
                for s in sents {
                    out.push_str(s);
                    out.push('\n');
                }
                out.push_str("--------------------------------\n");
            }
            fs::write(tldir.join(format!("timeline{k}.txt")), out)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod export_tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};

    #[test]
    fn export_then_load_round_trips() {
        let ds = generate(&SynthConfig::tiny());
        let root = std::env::temp_dir().join(format!("tl_l3s_export_{}", std::process::id()));
        export_l3s(&ds, &root).unwrap();
        let (back, report) = load_l3s(&root, "roundtrip").unwrap();
        fs::remove_dir_all(&root).unwrap();

        assert_eq!(report.skipped_docs, 0);
        assert_eq!(report.skipped_blocks, 0);
        assert_eq!(back.topics.len(), ds.topics.len());
        for (orig, loaded) in ds.topics.iter().zip(&back.topics) {
            assert_eq!(orig.articles.len(), loaded.articles.len());
            assert_eq!(orig.timelines.len(), loaded.timelines.len());
            // Sentence totals survive (article ids may be renumbered by
            // pub-date ordering, which the generator already applies).
            assert_eq!(orig.num_sentences(), loaded.num_sentences());
            for (a, b) in orig.timelines.iter().zip(&loaded.timelines) {
                assert_eq!(a.dates(), b.dates());
                assert_eq!(a.num_sentences(), b.num_sentences());
            }
        }
    }
}
