//! Shared per-corpus analysis: tokenize a topic's dated sentences **once**
//! and hand the result to every system being evaluated.
//!
//! The evaluation harness runs many systems over the same topic corpus, and
//! before this module each of them re-ran the full tokenize → stem → intern
//! pipeline from scratch. [`CorpusAnalysis`] performs that pass once per
//! topic (in parallel via `tl_nlp::analyze_batch`, which is token-identical
//! to serial) and feeds it to `TimelineGenerator::generate_analyzed`.
//!
//! Systems that operate on a *filtered* view of the corpus (the
//! pre-HeidelTime baselines drop mention-dated sentences) can't reuse the
//! full-corpus term ids directly: a fresh analyzer over the subset assigns
//! ids in subset-first-appearance order, and downstream float accumulation
//! follows id order, so ids must match exactly for outputs to stay
//! bit-identical. [`CorpusAnalysis::subset`] re-interns the cached tokens
//! in subset order — a pure integer remap, no re-tokenization — producing
//! precisely what a fresh analyzer over the subset texts would have
//! produced (pinned by a test below).

use crate::model::DatedSentence;
use tl_nlp::{analyze_batch, AnalysisOptions, Analyzer, Vocabulary};

/// A corpus tokenized once under retrieval analysis: the analyzer owning
/// the shared vocabulary (for frozen query analysis) plus one token row per
/// sentence.
#[derive(Debug, Clone)]
pub struct CorpusAnalysis {
    /// Analyzer owning the corpus vocabulary; query text is analyzed
    /// against it with `analyze_frozen`.
    pub analyzer: Analyzer,
    /// Retrieval token ids, row `i` for sentence `i`.
    pub tokens: Vec<Vec<u32>>,
}

impl CorpusAnalysis {
    /// Tokenize `sentences` in one pass (retrieval options — what every
    /// generator uses). With `parallel = true` the pass shards across
    /// cores; results are identical to serial.
    pub fn build(sentences: &[DatedSentence], parallel: bool) -> Self {
        let texts: Vec<&str> = sentences.iter().map(|s| s.text.as_str()).collect();
        let (analyzer, tokens) = analyze_batch(AnalysisOptions::retrieval(), &texts, parallel);
        Self { analyzer, tokens }
    }

    /// The analysis a fresh analyzer would produce over the subset of
    /// sentences at `keep` (indices into this analysis, in order): term ids
    /// re-interned in subset-first-appearance order, vocabulary rebuilt to
    /// match. A pure remap — nothing is re-tokenized.
    pub fn subset(&self, keep: &[usize]) -> CorpusAnalysis {
        let mut vocab = Vocabulary::new();
        let mut remap: Vec<u32> = vec![u32::MAX; self.analyzer.vocab().len()];
        let tokens: Vec<Vec<u32>> = keep
            .iter()
            .map(|&i| {
                self.tokens[i]
                    .iter()
                    .map(|&old| {
                        let slot = &mut remap[old as usize];
                        if *slot == u32::MAX {
                            let term = self
                                .analyzer
                                .vocab()
                                .term(old)
                                .expect("cached token id resolves");
                            *slot = vocab.intern(term);
                        }
                        *slot
                    })
                    .collect()
            })
            .collect();
        CorpusAnalysis {
            analyzer: Analyzer::with_vocab(vocab, self.analyzer.options()),
            tokens,
        }
    }

    /// Number of analyzed sentences.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when no sentences were analyzed.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DatedSentence;
    use tl_temporal::Date;

    fn sent(day: i32, text: &str, from_mention: bool) -> DatedSentence {
        let date = Date::from_days(17000 + day);
        DatedSentence {
            date,
            pub_date: date,
            article: 0,
            sentence_index: 0,
            text: text.to_string(),
            from_mention,
        }
    }

    fn corpus() -> Vec<DatedSentence> {
        (0..40)
            .map(|i| {
                sent(
                    i % 7,
                    &format!("leaders met for summit talks item {} round {}", i % 11, i),
                    i % 3 == 0,
                )
            })
            .collect()
    }

    #[test]
    fn build_matches_fresh_analyzer() {
        let c = corpus();
        let analysis = CorpusAnalysis::build(&c, true);
        let mut fresh = Analyzer::new(AnalysisOptions::retrieval());
        for (i, s) in c.iter().enumerate() {
            assert_eq!(analysis.tokens[i], fresh.analyze(&s.text), "sentence {i}");
        }
        assert_eq!(analysis.analyzer.vocab().len(), fresh.vocab().len());
        assert_eq!(analysis.len(), c.len());
    }

    #[test]
    fn subset_is_as_if_freshly_analyzed() {
        let c = corpus();
        let analysis = CorpusAnalysis::build(&c, false);
        let keep: Vec<usize> = c
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.from_mention)
            .map(|(i, _)| i)
            .collect();
        let sub = analysis.subset(&keep);

        // Oracle: a brand-new analyzer over only the kept texts.
        let mut fresh = Analyzer::new(AnalysisOptions::retrieval());
        for (row, &i) in keep.iter().enumerate() {
            assert_eq!(sub.tokens[row], fresh.analyze(&c[i].text), "kept row {row}");
        }
        assert_eq!(sub.analyzer.vocab().len(), fresh.vocab().len());
        for (id, term) in fresh.vocab().iter() {
            assert_eq!(sub.analyzer.vocab().term(id), Some(term), "vocab id {id}");
        }
        // Frozen query analysis agrees too.
        assert_eq!(
            sub.analyzer.analyze_frozen("summit talks unknownword"),
            fresh.analyze_frozen("summit talks unknownword")
        );
    }

    #[test]
    fn empty_subset_and_empty_corpus() {
        let analysis = CorpusAnalysis::build(&[], true);
        assert!(analysis.is_empty());
        let c = corpus();
        let analysis = CorpusAnalysis::build(&c, false);
        let sub = analysis.subset(&[]);
        assert!(sub.is_empty());
        assert_eq!(sub.analyzer.vocab().len(), 0);
    }
}
