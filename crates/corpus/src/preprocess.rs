//! Pre-processing: articles → dated sentences (Definition 2).
//!
//! Appendix A of the paper: *"If one sentence contains multiple date
//! expressions, we consider all distinct date-sentence pairs … Besides, each
//! sentence is also paired with the publication date of the article it
//! appears in."* This module runs the temporal tagger over every sentence
//! and emits exactly that pairing.

use crate::model::{Article, DatedSentence};
use tl_temporal::tagger::Granularity;
use tl_temporal::{Date, TemporalTagger};

/// Produce the dated-sentence corpus `{(date_i, sentence_i)}` for a set of
/// articles, restricted to the `[t1, t2]` window when given.
///
/// Every sentence yields one pair with its publication date, plus one pair
/// per *distinct day-granular* date mentioned in its text (month/year
/// granularity mentions are skipped — WILSON operates on days).
pub fn dated_sentences(articles: &[Article], window: Option<(Date, Date)>) -> Vec<DatedSentence> {
    let tagger = TemporalTagger::new();
    let mut out = Vec::new();
    for article in articles {
        for (si, text) in article.sentences.iter().enumerate() {
            let mut dates: Vec<(Date, bool)> = vec![(article.pub_date, false)];
            for tag in tagger.tag(text, article.pub_date) {
                if tag.granularity == Granularity::Day {
                    dates.push((tag.date, true));
                }
            }
            // Distinct dates only; mention-pairing wins over pub-date
            // pairing for the same day (it is more informative).
            dates.sort_by_key(|&(d, from_mention)| (d, !from_mention));
            dates.dedup_by_key(|&mut (d, _)| d);
            for (date, from_mention) in dates {
                if let Some((lo, hi)) = window {
                    if date < lo || date > hi {
                        continue;
                    }
                }
                out.push(DatedSentence {
                    date,
                    pub_date: article.pub_date,
                    article: article.id,
                    sentence_index: si,
                    text: text.clone(),
                    from_mention,
                });
            }
        }
    }
    out
}

/// Group dated sentences by date, returning `(date, indices)` pairs in
/// chronological order. Indices point into the input slice.
pub fn group_by_date(sentences: &[DatedSentence]) -> Vec<(Date, Vec<usize>)> {
    let mut by_date: std::collections::BTreeMap<Date, Vec<usize>> = Default::default();
    for (i, s) in sentences.iter().enumerate() {
        by_date.entry(s.date).or_default().push(i);
    }
    by_date.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Date {
        s.parse().unwrap()
    }

    fn article(id: usize, pub_date: &str, sentences: &[&str]) -> Article {
        Article {
            id,
            pub_date: d(pub_date),
            sentences: sentences.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn pub_date_pairing_always_present() {
        let a = article(0, "2018-06-01", &["Nothing temporal here."]);
        let out = dated_sentences(&[a], None);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].date, d("2018-06-01"));
        assert!(!out[0].from_mention);
    }

    #[test]
    fn mention_creates_second_pair() {
        let a = article(0, "2018-06-01", &["The summit will take place on June 12."]);
        let out = dated_sentences(&[a], None);
        assert_eq!(out.len(), 2);
        let mention: Vec<_> = out.iter().filter(|s| s.from_mention).collect();
        assert_eq!(mention.len(), 1);
        assert_eq!(mention[0].date, d("2018-06-12"));
    }

    #[test]
    fn multiple_mentions_all_paired() {
        let a = article(
            0,
            "2018-06-01",
            &["Talks on 2018-03-08 led to the 2018-06-12 summit."],
        );
        let out = dated_sentences(&[a], None);
        let dates: Vec<Date> = out.iter().map(|s| s.date).collect();
        assert!(dates.contains(&d("2018-03-08")));
        assert!(dates.contains(&d("2018-06-12")));
        assert!(dates.contains(&d("2018-06-01"))); // pub date
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn mention_equal_to_pub_date_deduped() {
        let a = article(
            0,
            "2018-06-12",
            &["The summit took place on June 12, 2018."],
        );
        let out = dated_sentences(&[a], None);
        assert_eq!(out.len(), 1);
        // The mention pairing wins the dedup.
        assert!(out[0].from_mention);
    }

    #[test]
    fn year_granularity_skipped() {
        let a = article(0, "2012-05-01", &["The war started in 2011."]);
        let out = dated_sentences(&[a], None);
        assert_eq!(out.len(), 1); // only pub-date pair
        assert!(!out[0].from_mention);
    }

    #[test]
    fn window_filters() {
        let a = article(
            0,
            "2018-06-01",
            &["Talks on 2018-03-08 led to the 2018-06-12 summit."],
        );
        let out = dated_sentences(&[a], Some((d("2018-06-01"), d("2018-06-30"))));
        let dates: Vec<Date> = out.iter().map(|s| s.date).collect();
        assert!(!dates.contains(&d("2018-03-08")));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn group_by_date_chronological() {
        let a = article(
            0,
            "2018-06-01",
            &["On 2018-03-08 talks began.", "More news."],
        );
        let out = dated_sentences(&[a], None);
        let groups = group_by_date(&out);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, d("2018-03-08"));
        assert_eq!(groups[1].0, d("2018-06-01"));
        let total: usize = groups.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, out.len());
    }

    #[test]
    fn indices_track_source() {
        let a0 = article(0, "2018-06-01", &["First sentence.", "Second sentence."]);
        let a1 = article(1, "2018-06-02", &["Third sentence."]);
        let out = dated_sentences(&[a0, a1], None);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].article, 0);
        assert_eq!(out[0].sentence_index, 0);
        assert_eq!(out[1].sentence_index, 1);
        assert_eq!(out[2].article, 1);
    }
}
