//! Timeline rendering: plain-text and Markdown output.
//!
//! The paper's motivating product (Figure 1, §1.1) is a *published*
//! timeline; this module turns a [`Timeline`] into the text shapes a
//! newsroom tool would emit — the dashed-block plain format (also what
//! [`crate::loader`] parses, so rendering round-trips) and Markdown with
//! date headings.

use crate::model::Timeline;
use std::fmt::Write as _;

/// Render in the l3s dashed-block plain format (parses back via
/// [`crate::loader`]'s timeline parser).
pub fn to_plain(timeline: &Timeline) -> String {
    let mut out = String::new();
    for (date, sents) in &timeline.entries {
        writeln!(out, "{date}").expect("string write");
        for s in sents {
            writeln!(out, "{s}").expect("string write");
        }
        writeln!(out, "--------------------------------").expect("string write");
    }
    out
}

/// Render as Markdown: `### YYYY-MM-DD` headings with bulleted sentences.
pub fn to_markdown(timeline: &Timeline, title: Option<&str>) -> String {
    let mut out = String::new();
    if let Some(t) = title {
        writeln!(out, "# {t}\n").expect("string write");
    }
    for (date, sents) in &timeline.entries {
        writeln!(out, "### {date}\n").expect("string write");
        for s in sents {
            writeln!(out, "- {s}").expect("string write");
        }
        writeln!(out).expect("string write");
    }
    out
}

/// One-line-per-date compact digest: `YYYY-MM-DD  first sentence…`.
pub fn to_digest(timeline: &Timeline, max_chars: usize) -> String {
    let mut out = String::new();
    for (date, sents) in &timeline.entries {
        let first = sents.first().map(String::as_str).unwrap_or("");
        let mut line = first.to_string();
        if line.chars().count() > max_chars {
            line = line.chars().take(max_chars.saturating_sub(1)).collect();
            line.push('…');
        }
        writeln!(out, "{date}  {line}").expect("string write");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tl_temporal::Date;

    fn timeline() -> Timeline {
        let d = |s: &str| -> Date { s.parse().unwrap() };
        Timeline::new(vec![
            (d("2018-03-08"), vec!["Trump agrees to meet Kim.".into()]),
            (
                d("2018-06-12"),
                vec![
                    "The summit takes place.".into(),
                    "A joint declaration is signed.".into(),
                ],
            ),
        ])
    }

    #[test]
    fn plain_round_trips_through_loader_parser() {
        let tl = timeline();
        let text = to_plain(&tl);
        // Re-parse via the loader's format (export/load round-trip at the
        // timeline level).
        let root = std::env::temp_dir().join(format!("tl_render_{}", std::process::id()));
        std::fs::create_dir_all(root.join("t/timelines")).unwrap();
        std::fs::write(root.join("t/timelines/x.txt"), &text).unwrap();
        let (ds, report) = crate::loader::load_l3s(&root, "rt").unwrap();
        std::fs::remove_dir_all(&root).unwrap();
        assert_eq!(report.skipped_blocks, 0);
        assert_eq!(ds.topics[0].timelines[0].entries, tl.entries);
    }

    #[test]
    fn markdown_structure() {
        let md = to_markdown(&timeline(), Some("US–North Korea summit"));
        assert!(md.starts_with("# US–North Korea summit"));
        assert!(md.contains("### 2018-03-08"));
        assert!(md.contains("- The summit takes place."));
        let untitled = to_markdown(&timeline(), None);
        assert!(untitled.starts_with("### 2018-03-08"));
    }

    #[test]
    fn digest_truncates() {
        let digest = to_digest(&timeline(), 12);
        let lines: Vec<&str> = digest.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("2018-03-08  "));
        assert!(lines[0].ends_with('…'));
        let full = to_digest(&timeline(), 200);
        assert!(full.contains("Trump agrees to meet Kim."));
    }

    #[test]
    fn empty_timeline_renders_empty() {
        let tl = Timeline::default();
        assert!(to_plain(&tl).is_empty());
        assert_eq!(to_markdown(&tl, None), "");
        assert!(to_digest(&tl, 80).is_empty());
    }
}
