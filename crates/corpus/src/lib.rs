//! Dataset substrate for the WILSON reproduction.
//!
//! The paper evaluates on *Timeline17* (Tran et al. 2013) and *Crisis*
//! (Tran et al. 2015): per-topic corpora of news articles plus
//! journalist-written ground-truth timelines (Table 4). Those corpora are
//! not redistributable here, so this crate provides both:
//!
//! * [`model`] — the shared data model: articles, ground-truth timelines,
//!   topic corpora, datasets and evaluation units,
//! * [`synth`] — a *seeded generative news model* calibrated to Table 4
//!   that reproduces the statistical structure the algorithms exploit
//!   (event bursts, past-skewed date references, shared event vocabulary),
//! * [`preprocess`] — the tokenize + temporally-tag pipeline producing the
//!   dated-sentence corpus `{(date_i, sentence_i)}` of Definition 2,
//! * [`stats`] — dataset overview statistics (regenerates Table 4),
//! * [`loader`] — a loader for the original l3s on-disk layout, so the real
//!   datasets drop in unchanged when available,
//! * [`wordbank`] — the English word inventory backing the generator.
#![warn(missing_docs)]

pub mod analysis;
pub mod filter;
pub mod io;
pub mod loader;
pub mod model;
pub mod preprocess;
pub mod render;
pub mod stats;
pub mod synth;
pub mod wordbank;

pub use analysis::CorpusAnalysis;
pub use filter::KeywordFilter;
pub use model::{
    Article, Dataset, DatedSentence, EvalUnit, Timeline, TimelineGenerator, TopicCorpus,
};
pub use preprocess::dated_sentences;
pub use stats::{dataset_stats, DatasetStats};
pub use synth::{generate, SynthConfig};
