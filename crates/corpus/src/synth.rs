//! Seeded generative news model — the Timeline17 / Crisis substitute.
//!
//! The original corpora (l3s.de) are not redistributable, so experiments run
//! on synthetic topics that reproduce the *statistical structure* the
//! algorithms in this workspace exploit:
//!
//! * each topic has latent **major events** on ground-truth dates, with
//!   heavy-tailed salience — report volume is proportional to salience and
//!   decays with time since the event (the "occurrence signals importance"
//!   observation of §2.2),
//! * sentences about an event share its **key-phrase vocabulary**, so
//!   extractive selection of the right sentences scores well under ROUGE
//!   and same-event sentences are BM25/cosine-similar,
//! * articles **mention dates explicitly**; references overwhelmingly point
//!   to *past* events, producing the old-date skew in the date-reference
//!   graph that motivates WILSON's recency adjustment (§2.2.1),
//! * ground-truth timelines are derived from the latent events, so date F1,
//!   coverage and ROUGE are all well-defined,
//! * per-dataset profiles are calibrated to Table 4 (topics, timelines,
//!   docs, sentences per doc, duration).
//!
//! Everything is deterministic given [`SynthConfig::seed`].

use crate::model::{Article, Dataset, Timeline, TopicCorpus};
use crate::wordbank::{CONTENT_WORDS, GLUE_WORDS, REPORTING_FRAMES};
use tl_support::rng::Rng;
use tl_temporal::Date;

/// Configuration of the generative news model.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Dataset name.
    pub name: String,
    /// Master seed; every derived stream is a function of it.
    pub seed: u64,
    /// Number of topics.
    pub num_topics: usize,
    /// Ground-truth timelines per topic (length = `num_topics`).
    pub timelines_per_topic: Vec<usize>,
    /// Articles per topic at scale 1.0.
    pub docs_per_topic: usize,
    /// Mean sentences per article.
    pub sents_per_doc: f64,
    /// Corpus duration in days.
    pub duration_days: u32,
    /// Range (inclusive) of ground-truth timeline lengths `T`.
    pub gt_dates: (usize, usize),
    /// Range (inclusive) of ground-truth sentences per date.
    pub gt_sents_per_date: (usize, usize),
    /// Multiplier on `docs_per_topic`; experiments shrink the corpus with
    /// this exactly as the paper shrinks via keyword filtering (§3.1.3).
    pub scale: f64,
    /// First day of the corpus window.
    pub start_date: Date,
}

impl SynthConfig {
    /// Timeline17 profile (Table 4: 9 topics, 19 timelines, 739 docs and
    /// 36,915 sentences per timeline on average, 242-day duration).
    pub fn timeline17() -> Self {
        Self {
            name: "timeline17".into(),
            seed: 17,
            num_topics: 9,
            timelines_per_topic: vec![3, 2, 2, 2, 2, 2, 2, 2, 2],
            docs_per_topic: 739,
            sents_per_doc: 50.0,
            duration_days: 242,
            gt_dates: (24, 40),
            gt_sents_per_date: (1, 3),
            scale: 1.0,
            start_date: Date::from_ymd(2011, 1, 15).expect("valid"),
        }
    }

    /// Crisis profile (Table 4: 4 topics, 22 timelines, 5,130 docs and
    /// 173,761 sentences per timeline on average, 388-day duration; §3.2.1:
    /// more than 90% of dates carry a single summary sentence).
    pub fn crisis() -> Self {
        Self {
            name: "crisis".into(),
            seed: 22,
            num_topics: 4,
            timelines_per_topic: vec![6, 6, 5, 5],
            docs_per_topic: 5130,
            sents_per_doc: 34.0,
            duration_days: 388,
            gt_dates: (22, 38),
            gt_sents_per_date: (1, 1),
            scale: 1.0,
            start_date: Date::from_ymd(2011, 1, 25).expect("valid"),
        }
    }

    /// A small profile for unit tests: 2 topics, 3 timelines, tiny corpora.
    pub fn tiny() -> Self {
        Self {
            name: "tiny".into(),
            seed: 7,
            num_topics: 2,
            timelines_per_topic: vec![2, 1],
            docs_per_topic: 60,
            sents_per_doc: 12.0,
            duration_days: 90,
            gt_dates: (6, 10),
            gt_sents_per_date: (1, 2),
            scale: 1.0,
            start_date: Date::from_ymd(2018, 1, 2).expect("valid"),
        }
    }

    /// A many-topics profile for scale experiments: `num_topics` topics of
    /// one timeline each, ~200 articles × ~18 sentences over a year —
    /// roughly 3,600 dated sentences per topic, so hundreds of topics reach
    /// the ≈10⁶-sentence regime the ANN benches exercise. Shape knobs stay
    /// Table-4-plausible (article length, duration, ground-truth density);
    /// only the topic count is inflated.
    pub fn scaled(num_topics: usize, seed: u64) -> Self {
        assert!(num_topics > 0, "at least one topic");
        Self {
            name: format!("scaled-{num_topics}x"),
            seed,
            num_topics,
            timelines_per_topic: vec![1; num_topics],
            docs_per_topic: 200,
            sents_per_doc: 18.0,
            duration_days: 365,
            gt_dates: (18, 30),
            gt_sents_per_date: (1, 2),
            scale: 1.0,
            start_date: Date::from_ymd(2015, 3, 1).expect("valid"),
        }
    }

    /// Builder-style scale override.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A latent major event of a topic.
struct Event {
    date: Date,
    /// Heavy-tailed *journalistic importance*: drives ground-truth timeline
    /// membership and retrospective references.
    salience: f64,
    /// *Media coverage* volume: importance distorted by lognormal noise —
    /// how much gets written about an event is only loosely coupled to how
    /// important a journalist will judge it in hindsight, which is why
    /// volume-based date selection underperforms reference-based selection
    /// on the real datasets (Tables 2/5).
    coverage: f64,
    /// Canonical fact token sequences (the "what happened"), drawn from
    /// the event's dedicated key-phrase words plus topic vocabulary.
    facts: Vec<Vec<String>>,
}

/// Generate a dataset from a config.
pub fn generate(config: &SynthConfig) -> Dataset {
    assert_eq!(
        config.timelines_per_topic.len(),
        config.num_topics,
        "timelines_per_topic must have one entry per topic"
    );
    let topics = (0..config.num_topics)
        .map(|t| generate_topic(config, t))
        .collect();
    Dataset {
        name: config.name.clone(),
        topics,
    }
}

fn topic_rng(config: &SynthConfig, topic: usize) -> Rng {
    Rng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (topic as u64 + 1))
}

fn generate_topic(config: &SynthConfig, topic_idx: usize) -> TopicCorpus {
    let mut rng = topic_rng(config, topic_idx);

    // --- Topic vocabulary ---
    let mut bank: Vec<&'static str> = CONTENT_WORDS.to_vec();
    rng.shuffle(&mut bank);
    let topic_words: Vec<&'static str> = bank[..40].to_vec();
    let mut keyword_pool: Vec<&'static str> = bank[40..].to_vec();
    let query = topic_words[..4].join(" ");

    // --- Latent events: Poisson-process dates + heavy-tailed salience ---
    // Dates are a sorted uniform sample of distinct days: uniform in
    // *density* (matching the paper's observation that ground-truth
    // timelines distribute roughly uniformly, Fig. 4) but with irregular
    // gaps, as real news events have — a fixed-stride selection cannot
    // ride along them.
    let max_t = config.gt_dates.1;
    let num_events = (max_t as f64 * 1.6).ceil() as usize;
    let mut offsets: Vec<i32> = Vec::with_capacity(num_events);
    let mut seen = std::collections::HashSet::new();
    offsets.push(rng.gen_range(0..4)); // crises open with an event
    seen.insert(offsets[0]);
    while offsets.len() < num_events.min(config.duration_days as usize) {
        let o = rng.gen_range(0..config.duration_days as i32);
        if seen.insert(o) {
            offsets.push(o);
        }
    }
    offsets.sort_unstable();
    let mut events: Vec<Event> = Vec::with_capacity(num_events);
    let mut ranks: Vec<usize> = (0..offsets.len()).collect();
    rng.shuffle(&mut ranks);
    for (&offset, &rank) in offsets.iter().zip(ranks.iter()) {
        let date = config.start_date.plus_days(offset);
        let salience = 1.0 / ((rank + 2) as f64).powf(0.7);
        // Irwin-Hall approximate standard normal for the lognormal factor.
        let z: f64 = (0..12).map(|_| rng.f64()).sum::<f64>() - 6.0;
        let coverage = salience * (0.9 * z).exp();
        // Event key-phrase: 5 dedicated words.
        let kw_n = 5.min(keyword_pool.len());
        let keywords: Vec<&'static str> = keyword_pool.drain(..kw_n).collect();
        // 3–6 canonical facts.
        let num_facts = rng.gen_range(3..=6);
        let facts = (0..num_facts)
            .map(|_| make_fact(&mut rng, &keywords, &topic_words))
            .collect();
        events.push(Event {
            date,
            salience,
            coverage,
            facts,
        });
        if keyword_pool.len() < 5 {
            // Refill the pool; later events may share words with early ones,
            // which is realistic (stories overlap lexically).
            keyword_pool = bank[40..].to_vec();
            rng.shuffle(&mut keyword_pool);
        }
    }
    events.sort_by_key(|e| e.date);

    // --- Ground-truth timelines (one per simulated news agency) ---
    let num_timelines = config.timelines_per_topic[topic_idx];
    let timelines: Vec<Timeline> = (0..num_timelines)
        .map(|_| make_gt_timeline(config, &mut rng, &events))
        .collect();

    // --- Articles ---
    let num_docs =
        ((config.docs_per_topic as f64 * config.scale).round() as usize).max(num_events * 2);
    let mut articles = Vec::with_capacity(num_docs);
    for id in 0..num_docs {
        articles.push(make_article(config, &mut rng, &events, &topic_words, id));
    }
    articles.sort_by_key(|a| a.pub_date);
    for (i, a) in articles.iter_mut().enumerate() {
        a.id = i;
    }

    TopicCorpus {
        name: format!("{}-topic{}", config.name, topic_idx),
        query,
        articles,
        timelines,
    }
}

/// Compound two bank words into a hyphenated token ("ceasefire-envoy").
/// The tokenizer keeps hyphenated words whole and the stemmer leaves
/// non-alphabetic tokens alone, so compounds square the effective
/// vocabulary — unrelated sentences rarely collide on them, keeping the
/// Random baseline's ROUGE honest while same-event sentences still match.
fn compound(rng: &mut Rng, bank: &[&'static str]) -> String {
    let a = rng.choose(bank).expect("bank non-empty");
    let b = rng.choose(bank).expect("bank non-empty");
    format!("{a}-{b}")
}

/// A canonical fact: 14–22 tokens (news-register sentence length) mixing
/// event key-phrase compounds, topic words and glue. Stored lowercase;
/// renderers capitalize.
fn make_fact(
    rng: &mut Rng,
    keywords: &[&'static str],
    topic_words: &[&'static str],
) -> Vec<String> {
    let len = rng.gen_range(14..=22usize);
    let mut tokens = Vec::with_capacity(len);
    for i in 0..len {
        let roll: f64 = rng.f64();
        let w = if i % 3 == 0 || roll < 0.35 {
            compound(rng, keywords)
        } else if roll < 0.7 {
            rng.choose(topic_words)
                .expect("topic words non-empty")
                .to_string()
        } else {
            rng.choose(GLUE_WORDS).expect("glue non-empty").to_string()
        };
        tokens.push(w);
    }
    tokens
}

fn make_gt_timeline(config: &SynthConfig, rng: &mut Rng, events: &[Event]) -> Timeline {
    let t_target = rng
        .gen_range(config.gt_dates.0..=config.gt_dates.1)
        .min(events.len());
    // Rank events by agency-perceived salience (true salience × noise).
    let mut scored: Vec<(usize, f64)> = events
        .iter()
        .enumerate()
        .map(|(i, e)| (i, e.salience * (1.0 + 0.3 * rng.f64())))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let mut chosen: Vec<usize> = scored[..t_target].iter().map(|&(i, _)| i).collect();
    chosen.sort_unstable();
    let entries = chosen
        .into_iter()
        .map(|i| {
            let e = &events[i];
            let n = rng
                .gen_range(config.gt_sents_per_date.0..=config.gt_sents_per_date.1)
                .min(e.facts.len());
            let sents = e.facts[..n].iter().map(|f| render_canonical(f)).collect();
            (e.date, sents)
        })
        .collect();
    Timeline::new(entries)
}

fn render_canonical(fact: &[String]) -> String {
    let mut s = fact.join(" ");
    if let Some(first) = s.get_mut(0..1) {
        first.make_ascii_uppercase();
    }
    s.push('.');
    s
}

/// Format a date expression for embedding in text; format chosen by `roll`.
/// Full (year-carrying) formats are always used so the tagger resolves them
/// exactly regardless of distance from the publication date.
fn render_date(date: Date, roll: f64) -> String {
    let (y, m, d) = date.ymd();
    const MONTHS: [&str; 12] = [
        "January",
        "February",
        "March",
        "April",
        "May",
        "June",
        "July",
        "August",
        "September",
        "October",
        "November",
        "December",
    ];
    let month = MONTHS[(m - 1) as usize];
    if roll < 0.35 {
        format!("{y:04}-{m:02}-{d:02}")
    } else if roll < 0.75 {
        format!("{month} {d}, {y}")
    } else {
        format!("{d} {month} {y}")
    }
}

/// Render a noisy paraphrase of a fact, optionally dated.
fn render_report(rng: &mut Rng, fact: &[String], mention: Option<Date>) -> String {
    let mut tokens: Vec<String> = Vec::with_capacity(fact.len() + 6);
    if rng.f64() < 0.3 {
        tokens.extend(
            rng.choose(REPORTING_FRAMES)
                .expect("frames non-empty")
                .split(' ')
                .map(str::to_string),
        );
    }
    for w in fact {
        let roll: f64 = rng.f64();
        if roll < 0.12 {
            continue; // drop
        }
        if roll > 0.88 {
            tokens.push(rng.choose(GLUE_WORDS).expect("glue").to_string());
        }
        tokens.push(w.clone());
    }
    if tokens.is_empty() {
        tokens.push(fact[0].clone());
    }
    let mut s = tokens.join(" ");
    if let Some(date) = mention {
        let expr = render_date(date, rng.f64());
        if rng.f64() < 0.5 {
            s = format!("On {expr} {s}");
        } else {
            s = format!("{s} on {expr}");
        }
    }
    if let Some(first) = s.get_mut(0..1) {
        first.make_ascii_uppercase();
    }
    s.push('.');
    s
}

/// Render a background-noise sentence.
fn render_noise(rng: &mut Rng, topic_words: &[&'static str]) -> String {
    let len = rng.gen_range(12..=20usize);
    let mut tokens = Vec::with_capacity(len);
    for _ in 0..len {
        let roll: f64 = rng.f64();
        let w = if roll < 0.3 {
            rng.choose(topic_words).expect("topic words").to_string()
        } else if roll < 0.7 {
            compound(rng, CONTENT_WORDS)
        } else {
            rng.choose(GLUE_WORDS).expect("glue").to_string()
        };
        tokens.push(w);
    }
    let mut s = tokens.join(" ");
    if let Some(first) = s.get_mut(0..1) {
        first.make_ascii_uppercase();
    }
    s.push('.');
    s
}

/// Sample an anchor event index weighted by *media coverage* (not
/// journalistic importance — the two are only loosely coupled).
fn sample_event(rng: &mut Rng, events: &[Event]) -> usize {
    let total: f64 = events.iter().map(|e| e.coverage).sum();
    let mut x = rng.f64() * total;
    for (i, e) in events.iter().enumerate() {
        x -= e.coverage;
        if x <= 0.0 {
            return i;
        }
    }
    events.len() - 1
}

fn make_article(
    config: &SynthConfig,
    rng: &mut Rng,
    events: &[Event],
    topic_words: &[&'static str],
    id: usize,
) -> Article {
    let end_date = config.start_date.plus_days(config.duration_days as i32 - 1);
    let num_sents = {
        // Rough Poisson via sum of uniforms; exact distribution is
        // irrelevant — only the mean matters for Table 4 calibration.
        let jitter: f64 = 0.5 + rng.f64();
        ((config.sents_per_doc * jitter).round() as usize).max(3)
    };
    let background = rng.f64() < 0.2;

    if background {
        let offset = rng.gen_range(0..config.duration_days as i32);
        let pub_date = config.start_date.plus_days(offset);
        let sentences = (0..num_sents)
            .map(|_| render_noise(rng, topic_words))
            .collect();
        return Article {
            id,
            pub_date,
            sentences,
        };
    }

    // Anchored article: published with a small lag after its anchor event.
    let anchor = sample_event(rng, events);
    let e = &events[anchor];
    // Lag: some same-day coverage, then a long geometric tail — wire copy
    // and follow-ups keep arriving for weeks, so publication days are
    // mixtures of several events' reporting (the realistic smear that
    // publication-date-only systems suffer from).
    let lag = if rng.f64() < 0.15 {
        0
    } else {
        let u: f64 = rng.f64();
        1 + (-(1.0 - u).ln() * 9.0).round() as i32
    };
    let pub_date = e.date.plus_days(lag.clamp(0, 30)).min(end_date);

    let mut sentences = Vec::with_capacity(num_sents);
    for _ in 0..num_sents {
        let roll: f64 = rng.f64();
        if roll < 0.42 {
            // Anchor-event report; 45% carry an explicit date mention.
            let fact = rng.choose(&e.facts).expect("facts non-empty");
            let mention = (rng.f64() < 0.45).then_some(e.date);
            sentences.push(render_report(rng, fact, mention));
        } else if roll < 0.60 {
            // Reference to another (past, pub-date-visible) event, weighted
            // by salience and age: big early events keep being re-told
            // ("the crisis that began on ..."), which is precisely the
            // old-date reference skew §2.2.1 corrects for.
            let past: Vec<usize> = (0..events.len())
                .filter(|&i| events[i].date <= pub_date && i != anchor)
                .collect();
            let picked = {
                let weights: Vec<f64> = past
                    .iter()
                    .map(|&i| {
                        let age = pub_date.diff_days(events[i].date) as f64;
                        // Historically important events are referenced
                        // superlinearly often in retrospectives.
                        events[i].salience.powf(1.5) * (1.0 + age / 60.0)
                    })
                    .collect();
                let total: f64 = weights.iter().sum();
                if total > 0.0 {
                    let mut x = rng.f64() * total;
                    let mut chosen = None;
                    for (k, w) in weights.iter().enumerate() {
                        x -= w;
                        if x <= 0.0 {
                            chosen = Some(past[k]);
                            break;
                        }
                    }
                    chosen.or_else(|| past.last().copied())
                } else {
                    None
                }
            };
            if let Some(ri) = picked {
                let re = &events[ri];
                let fact = rng.choose(&re.facts).expect("facts non-empty");
                sentences.push(render_report(rng, fact, Some(re.date)));
            } else {
                sentences.push(render_noise(rng, topic_words));
            }
        } else {
            sentences.push(render_noise(rng, topic_words));
        }
    }
    Article {
        id,
        pub_date,
        sentences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&SynthConfig::tiny());
        let b = generate(&SynthConfig::tiny());
        assert_eq!(a.topics.len(), b.topics.len());
        for (ta, tb) in a.topics.iter().zip(&b.topics) {
            assert_eq!(ta.query, tb.query);
            assert_eq!(ta.articles.len(), tb.articles.len());
            for (x, y) in ta.articles.iter().zip(&tb.articles) {
                assert_eq!(x.pub_date, y.pub_date);
                assert_eq!(x.sentences, y.sentences);
            }
            assert_eq!(ta.timelines.len(), tb.timelines.len());
            for (x, y) in ta.timelines.iter().zip(&tb.timelines) {
                assert_eq!(x.entries, y.entries);
            }
        }
    }

    #[test]
    fn scaled_profile_shape() {
        let ds = generate(&SynthConfig::scaled(3, 42));
        assert_eq!(ds.topics.len(), 3);
        assert_eq!(ds.num_timelines(), 3);
        let sents: usize = ds
            .topics
            .iter()
            .flat_map(|t| &t.articles)
            .map(|a| a.sentences.len())
            .sum();
        // 3 topics × 200 docs × ~18 sentences ≈ 10.8k, with loose bounds so
        // salience-driven volume noise can't flake the test.
        assert!((3 * 200 * 9..3 * 200 * 36).contains(&sents), "{sents}");
        let again = generate(&SynthConfig::scaled(3, 42));
        assert_eq!(
            ds.topics[0].articles[0].sentences,
            again.topics[0].articles[0].sentences
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SynthConfig::tiny());
        let b = generate(&SynthConfig::tiny().with_seed(999));
        assert_ne!(
            a.topics[0].articles[0].sentences,
            b.topics[0].articles[0].sentences
        );
    }

    #[test]
    fn shape_matches_config() {
        let cfg = SynthConfig::tiny();
        let ds = generate(&cfg);
        assert_eq!(ds.topics.len(), 2);
        assert_eq!(ds.topics[0].timelines.len(), 2);
        assert_eq!(ds.topics[1].timelines.len(), 1);
        assert_eq!(ds.num_timelines(), 3);
        for t in &ds.topics {
            assert!(!t.articles.is_empty());
            assert!(!t.query.is_empty());
            for tl in &t.timelines {
                let n = tl.num_dates();
                assert!(
                    (cfg.gt_dates.0..=cfg.gt_dates.1).contains(&n),
                    "gt dates {n}"
                );
            }
        }
    }

    #[test]
    fn dates_within_window() {
        let cfg = SynthConfig::tiny();
        let ds = generate(&cfg);
        let end = cfg.start_date.plus_days(cfg.duration_days as i32 - 1);
        for t in &ds.topics {
            for a in &t.articles {
                assert!(a.pub_date >= cfg.start_date && a.pub_date <= end);
            }
            for tl in &t.timelines {
                for (d, _) in &tl.entries {
                    assert!(*d >= cfg.start_date && *d <= end);
                }
            }
        }
    }

    #[test]
    fn gt_timelines_sorted_and_nonempty() {
        let ds = generate(&SynthConfig::tiny());
        for t in &ds.topics {
            for tl in &t.timelines {
                let dates = tl.dates();
                assert!(dates.windows(2).all(|w| w[0] < w[1]));
                assert!(tl.entries.iter().all(|(_, s)| !s.is_empty()));
            }
        }
    }

    #[test]
    fn articles_sorted_by_pub_date_with_dense_ids() {
        let ds = generate(&SynthConfig::tiny());
        for t in &ds.topics {
            assert!(t
                .articles
                .windows(2)
                .all(|w| w[0].pub_date <= w[1].pub_date));
            for (i, a) in t.articles.iter().enumerate() {
                assert_eq!(a.id, i);
            }
        }
    }

    #[test]
    fn scale_shrinks_corpus() {
        let full = generate(&SynthConfig::tiny());
        let half = generate(&SynthConfig::tiny().with_scale(0.5));
        assert!(half.topics[0].articles.len() < full.topics[0].articles.len());
    }

    #[test]
    fn text_contains_date_mentions() {
        // A healthy fraction of sentences must carry parseable explicit
        // dates — that is what the date-reference graph is built from.
        let ds = generate(&SynthConfig::tiny());
        let mut dated = 0usize;
        let mut total = 0usize;
        let tagger = tl_temporal::TemporalTagger::new();
        for t in &ds.topics {
            for a in &t.articles {
                for s in &a.sentences {
                    total += 1;
                    if !tagger.tag(s, a.pub_date).is_empty() {
                        dated += 1;
                    }
                }
            }
        }
        let frac = dated as f64 / total as f64;
        assert!(frac > 0.15, "only {frac:.3} of sentences carry dates");
    }

    #[test]
    fn gt_summary_vocabulary_appears_in_articles() {
        // Extractive summarization is only possible if article sentences
        // lexically overlap the ground truth.
        let ds = generate(&SynthConfig::tiny());
        let t = &ds.topics[0];
        let all_text = t
            .articles
            .iter()
            .flat_map(|a| a.sentences.iter())
            .map(String::as_str)
            .collect::<Vec<_>>()
            .join(" ")
            .to_lowercase();
        let mut hit = 0usize;
        let mut total = 0usize;
        for tl in &t.timelines {
            for (_, sents) in &tl.entries {
                for s in sents {
                    for w in s.to_lowercase().split(' ') {
                        let w = w.trim_end_matches('.');
                        if w.len() > 3 {
                            total += 1;
                            if all_text.contains(w) {
                                hit += 1;
                            }
                        }
                    }
                }
            }
        }
        assert!(hit as f64 / total as f64 > 0.8);
    }

    #[test]
    fn profiles_have_table4_shape() {
        let t17 = SynthConfig::timeline17();
        assert_eq!(t17.num_topics, 9);
        assert_eq!(t17.timelines_per_topic.iter().sum::<usize>(), 19);
        assert_eq!(t17.docs_per_topic, 739);
        assert_eq!(t17.duration_days, 242);
        let cr = SynthConfig::crisis();
        assert_eq!(cr.num_topics, 4);
        assert_eq!(cr.timelines_per_topic.iter().sum::<usize>(), 22);
        assert_eq!(cr.docs_per_topic, 5130);
        assert_eq!(cr.duration_days, 388);
    }

    #[test]
    #[should_panic(expected = "one entry per topic")]
    fn mismatched_timelines_vector_panics() {
        let mut cfg = SynthConfig::tiny();
        cfg.timelines_per_topic = vec![1];
        generate(&cfg);
    }
}
