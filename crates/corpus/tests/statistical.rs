//! Statistical properties of the synthetic news generator.
//!
//! DESIGN.md §2 claims the generator reproduces the structural properties
//! the WILSON paper's algorithms exploit; these tests measure each claim
//! on generated data rather than trusting the generator's intent.

use tl_corpus::{dated_sentences, generate, SynthConfig};
use tl_temporal::Date;

fn t17_small() -> tl_corpus::Dataset {
    generate(&SynthConfig::timeline17().with_scale(0.05))
}

/// "References overwhelmingly point to past events": the fraction of
/// mention pairings whose mentioned date precedes the publication date
/// must dominate.
#[test]
fn references_point_backwards() {
    let ds = t17_small();
    let mut past = 0usize;
    let mut future = 0usize;
    for topic in &ds.topics {
        for s in dated_sentences(&topic.articles, None) {
            if s.from_mention && s.date != s.pub_date {
                if s.date < s.pub_date {
                    past += 1;
                } else {
                    future += 1;
                }
            }
        }
    }
    let frac = past as f64 / (past + future).max(1) as f64;
    assert!(frac > 0.8, "only {frac:.2} of references point backwards");
}

/// "Report volume is proportional to salience": ground-truth dates (the
/// most salient events) must attract more dated sentences than the median
/// corpus date.
#[test]
fn gt_dates_attract_above_median_volume() {
    let ds = t17_small();
    for topic in ds.topics.iter().take(3) {
        let corpus = dated_sentences(&topic.articles, None);
        let mut volume: std::collections::HashMap<Date, usize> = Default::default();
        for s in &corpus {
            *volume.entry(s.date).or_insert(0) += 1;
        }
        let mut all: Vec<usize> = volume.values().copied().collect();
        all.sort_unstable();
        let median = all[all.len() / 2] as f64;
        let gt = &topic.timelines[0];
        let gt_mean: f64 = gt
            .dates()
            .iter()
            .map(|d| volume.get(d).copied().unwrap_or(0) as f64)
            .sum::<f64>()
            / gt.num_dates() as f64;
        assert!(
            gt_mean > median,
            "{}: gt mean volume {gt_mean:.1} <= median {median}",
            topic.name
        );
    }
}

/// "Ground-truth timelines distribute roughly uniformly" (Fig. 4): the
/// fraction of gt dates in each third of the corpus span must be balanced
/// within a loose tolerance.
#[test]
fn gt_dates_roughly_uniform_over_span() {
    let ds = t17_small();
    let mut thirds = [0usize; 3];
    let mut total = 0usize;
    for topic in &ds.topics {
        let Some((lo, hi)) = topic.span() else {
            continue;
        };
        let span = hi.diff_days(lo).max(1) as f64;
        for gt in &topic.timelines {
            for d in gt.dates() {
                let frac = d.diff_days(lo) as f64 / span;
                let bin = ((frac * 3.0) as usize).min(2);
                thirds[bin] += 1;
                total += 1;
            }
        }
    }
    for (i, &c) in thirds.iter().enumerate() {
        let frac = c as f64 / total as f64;
        assert!(
            (0.15..=0.55).contains(&frac),
            "third {i} holds {frac:.2} of gt dates: {thirds:?}"
        );
    }
}

/// "Same-event sentences share vocabulary": sentences mention-paired to a
/// gt date must be lexically closer to that date's gt summary than to a
/// random other date's summary.
#[test]
fn mention_sentences_match_their_events_summary() {
    let ds = t17_small();
    let topic = &ds.topics[0];
    let corpus = dated_sentences(&topic.articles, None);
    let gt = &topic.timelines[0];
    let word_bag = |text: &str| -> std::collections::HashSet<String> {
        text.to_lowercase()
            .split_whitespace()
            .map(|w| {
                w.trim_matches(|c: char| !c.is_alphanumeric() && c != '-')
                    .to_string()
            })
            .filter(|w| w.len() > 3)
            .collect()
    };
    let overlap = |a: &std::collections::HashSet<String>, b: &std::collections::HashSet<String>| {
        if a.is_empty() {
            return 0.0;
        }
        a.iter().filter(|w| b.contains(*w)).count() as f64 / a.len() as f64
    };
    let entries = &gt.entries;
    let mut own_total = 0.0;
    let mut other_total = 0.0;
    let mut n = 0usize;
    for (k, (date, sents)) in entries.iter().enumerate() {
        let own_bag = word_bag(&sents.join(" "));
        let other = &entries[(k + entries.len() / 2) % entries.len()];
        let other_bag = word_bag(&other.1.join(" "));
        for s in corpus
            .iter()
            .filter(|s| s.from_mention && s.date == *date)
            .take(10)
        {
            let bag = word_bag(&s.text);
            own_total += overlap(&bag, &own_bag);
            other_total += overlap(&bag, &other_bag);
            n += 1;
        }
    }
    assert!(n > 20, "too few mention sentences sampled: {n}");
    assert!(
        own_total > other_total * 1.5,
        "own-event overlap {own_total:.1} not clearly above cross-event {other_total:.1}"
    );
}

/// Embedded date expressions must resolve to the intended day: every
/// mention pairing's date string round-trips through the tagger (checked
/// implicitly by construction — here we just require a healthy mention
/// rate, since mentions are what the whole date graph is made of).
#[test]
fn mention_rate_is_substantial() {
    let ds = t17_small();
    let corpus = dated_sentences(&ds.topics[0].articles, None);
    let mentions = corpus.iter().filter(|s| s.from_mention).count();
    let rate = mentions as f64 / corpus.len() as f64;
    assert!(
        (0.05..=0.6).contains(&rate),
        "mention rate {rate:.3} outside plausible news range"
    );
}

/// Coverage noise: media volume must NOT perfectly follow journalist
/// salience — the rank correlation between a date's volume and gt
/// membership should be positive but far from 1 (DESIGN.md: volume-based
/// methods must not get a free ride).
#[test]
fn volume_is_noisy_proxy_for_gt() {
    let ds = t17_small();
    let mut in_gt_better = 0usize;
    let mut trials = 0usize;
    for topic in &ds.topics {
        let corpus = dated_sentences(&topic.articles, None);
        let mut volume: std::collections::HashMap<Date, usize> = Default::default();
        for s in &corpus {
            *volume.entry(s.date).or_insert(0) += 1;
        }
        let gt: std::collections::HashSet<Date> = topic.timelines[0].dates().into_iter().collect();
        // Compare each gt date against a non-gt date with the next-closest
        // volume: gt should win often but not always.
        let mut non_gt: Vec<usize> = volume
            .iter()
            .filter(|(d, _)| !gt.contains(d))
            .map(|(_, &v)| v)
            .collect();
        non_gt.sort_unstable_by(|a, b| b.cmp(a));
        for (i, d) in gt.iter().enumerate() {
            if let Some(&rival) = non_gt.get(i) {
                trials += 1;
                if volume.get(d).copied().unwrap_or(0) > rival {
                    in_gt_better += 1;
                }
            }
        }
    }
    let frac = in_gt_better as f64 / trials.max(1) as f64;
    assert!(
        (0.05..=0.95).contains(&frac),
        "gt-vs-rival volume win rate {frac:.2} — coverage either perfectly \
         or never tracks salience; both break the evaluation's realism"
    );
}
