//! The TILSE submodular framework (Martschat & Markert, CoNLL 2018) — the
//! state-of-the-art unsupervised comparison system of Table 7 / Figure 2.
//!
//! TILSE adapts the Lin & Bilmes (2011) monotone-submodular MDS objective
//! to timelines:
//!
//! ```text
//! F(S) = Σ_i min(Σ_{j∈S} w_ij, α·Σ_{j∈V} w_ij)      (saturated coverage)
//!      + λ Σ_k sqrt(Σ_{j ∈ S ∩ P_k} r̄_j)            (cluster diversity)
//! ```
//!
//! over the **full pairwise sentence-similarity structure** `w` (TF-IDF
//! cosine), maximized greedily with lazy evaluation. The two paper
//! variants:
//!
//! * **ASMDS** — "a submodular MDS": diversity reward over *temporal
//!   clusters* (week buckets), soft date preferences;
//! * **TLSConstraints** — pure saturated coverage (λ = 0) under *hard
//!   temporal constraints*: at most `t` distinct dates and at most `n`
//!   sentences per date.
//!
//! Computing `w` is `O((TN)²)` in the corpus size — this is the quadratic
//! wall Figure 2 demonstrates and WILSON's divide-and-conquer avoids.
//! Similarities below [`SubmodularConfig::sparsity_threshold`] are not
//! *stored* (news sentences are mostly dissimilar, so the matrix is
//! effectively sparse), but in the faithful reference every pair is still
//! *computed*, preserving the quadratic cost profile.
//!
//! By default the matrix now comes from `tl_nlp::allpairs_cosine`, the
//! shared term-at-a-time kernel that visits only term-sharing pairs and is
//! **bit-identical** to the quadratic loop — same timelines, far less time.
//! Setting [`SubmodularConfig::faithful_quadratic`] selects the retained
//! `tl_nlp::pairwise_reference` double loop instead, for the Figure 2
//! scaling runs whose *cost profile* (not just output) must stay quadratic.

use std::collections::HashMap;
use tl_corpus::{CorpusAnalysis, DatedSentence, Timeline, TimelineGenerator};
use tl_nlp::{
    allpairs_cosine, analyze_batch, pairwise_reference, AnalysisOptions, SimilarityMatrix,
    SparseVector, TfIdfModel,
};
use tl_temporal::Date;

/// Which TILSE variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmodularVariant {
    /// Coverage + temporal-cluster diversity.
    Asmds,
    /// Pure coverage under hard per-date cardinality constraints.
    TlsConstraints,
}

/// Framework parameters.
#[derive(Debug, Clone, Copy)]
pub struct SubmodularConfig {
    /// Variant to run.
    pub variant: SubmodularVariant,
    /// Coverage saturation coefficient α (fraction of a sentence's total
    /// similarity mass after which more coverage of it stops paying).
    pub alpha: f64,
    /// Diversity weight λ (ASMDS only).
    pub lambda: f64,
    /// Similarities below this are not stored (still computed).
    pub sparsity_threshold: f64,
    /// Temporal cluster width in days for the ASMDS diversity term.
    pub cluster_days: u32,
    /// Compute the similarity matrix with the serial quadratic reference
    /// loop instead of the term-at-a-time kernel. The output is bit-for-bit
    /// the same either way; this flag exists for the Figure 2 scaling runs,
    /// which demonstrate TILSE's quadratic *cost*.
    pub faithful_quadratic: bool,
}

impl SubmodularConfig {
    /// ASMDS defaults.
    pub fn asmds() -> Self {
        Self {
            variant: SubmodularVariant::Asmds,
            alpha: 0.1,
            lambda: 4.0,
            sparsity_threshold: 0.05,
            cluster_days: 7,
            faithful_quadratic: false,
        }
    }

    /// TLSConstraints defaults.
    pub fn tls_constraints() -> Self {
        Self {
            variant: SubmodularVariant::TlsConstraints,
            alpha: 0.1,
            lambda: 0.0,
            sparsity_threshold: 0.05,
            cluster_days: 7,
            faithful_quadratic: false,
        }
    }

    /// Toggle the serial quadratic reference path (Figure 2 fidelity).
    pub fn with_faithful_quadratic(mut self, faithful: bool) -> Self {
        self.faithful_quadratic = faithful;
        self
    }
}

/// The TILSE baseline.
#[derive(Debug, Clone)]
pub struct TilseBaseline {
    config: SubmodularConfig,
}

impl TilseBaseline {
    /// Create with an explicit configuration.
    pub fn new(config: SubmodularConfig) -> Self {
        Self { config }
    }

    /// The ASMDS variant with defaults.
    pub fn asmds() -> Self {
        Self::new(SubmodularConfig::asmds())
    }

    /// The TLSConstraints variant with defaults.
    pub fn tls_constraints() -> Self {
        Self::new(SubmodularConfig::tls_constraints())
    }
}

/// Sparse row of the similarity matrix: `(column, weight)` with weight above
/// the storage threshold.
type SimRow = Vec<(u32, f32)>;

struct SimMatrix {
    rows: Vec<SimRow>,
    /// Full row sums (computed before thresholding).
    row_total: Vec<f64>,
}

impl SimMatrix {
    /// Quantize a kernel matrix into the legacy storage layout: stored
    /// similarities narrow to `f32` exactly as the original loop's
    /// `sim as f32` did, so greedy decisions see the same bits.
    fn from_kernel(m: SimilarityMatrix) -> Self {
        let rows = m
            .rows
            .into_iter()
            .map(|row| row.into_iter().map(|(j, s)| (j, s as f32)).collect())
            .collect();
        SimMatrix {
            rows,
            row_total: m.row_total,
        }
    }
}

/// Compute all pairwise TF-IDF cosines. Routed through the shared kernel by
/// default; `faithful_quadratic` selects the retained `O(n²)` reference
/// loop (bit-identical output, quadratic cost).
fn pairwise_similarities(vectors: &[SparseVector], threshold: f64, faithful: bool) -> SimMatrix {
    SimMatrix::from_kernel(if faithful {
        pairwise_reference(vectors, threshold)
    } else {
        allpairs_cosine(vectors, threshold, true)
    })
}

impl TilseBaseline {
    fn generate_with_tokens(
        &self,
        sentences: &[DatedSentence],
        tokens: &[Vec<u32>],
        t: usize,
        n: usize,
    ) -> Timeline {
        let cfg = &self.config;
        let tfidf = TfIdfModel::fit(tokens.iter().map(Vec::as_slice));
        let vectors: Vec<SparseVector> = tokens.iter().map(|tk| tfidf.unit_vector(tk)).collect();

        // The all-pairs step (quadratic in the faithful reference).
        let sim = pairwise_similarities(&vectors, cfg.sparsity_threshold, cfg.faithful_quadratic);
        let num = sentences.len();

        // Saturation caps and singleton relevance.
        let caps: Vec<f64> = sim.row_total.iter().map(|&s| cfg.alpha * s).collect();
        let relevance: Vec<f64> = sim
            .row_total
            .iter()
            .map(|&s| s / num.max(1) as f64)
            .collect();

        // Temporal clusters for the ASMDS diversity term.
        let first_day = sentences
            .iter()
            .map(|s| s.date.days())
            .min()
            .expect("non-empty");
        let cluster_of: Vec<usize> = sentences
            .iter()
            .map(|s| ((s.date.days() - first_day) as u32 / cfg.cluster_days.max(1)) as usize)
            .collect();
        let num_clusters = cluster_of.iter().copied().max().unwrap_or(0) + 1;

        // Greedy state.
        let budget = t.saturating_mul(n);
        let mut cover = vec![0.0f64; num]; // Σ_{j∈S} w_ij per i
        let mut cluster_mass = vec![0.0f64; num_clusters];
        let mut selected: Vec<usize> = Vec::with_capacity(budget);
        let mut date_counts: HashMap<Date, usize> = HashMap::new();
        let mut taken = vec![false; num];

        // Marginal gain of adding j given current state.
        let gain = |j: usize, cover: &[f64], cluster_mass: &[f64]| -> f64 {
            let mut g = 0.0;
            // Own coverage of itself: adding j covers sentence j fully too
            // (w_jj = 1 by cosine of unit vectors) — include it.
            g += (cover[j] + 1.0).min(caps[j].max(1.0)) - cover[j].min(caps[j].max(1.0));
            for &(i, w) in &sim.rows[j] {
                let i = i as usize;
                let w = w as f64;
                g += (cover[i] + w).min(caps[i]) - cover[i].min(caps[i]);
            }
            if cfg.lambda > 0.0 {
                let k = cluster_of[j];
                g +=
                    cfg.lambda * ((cluster_mass[k] + relevance[j]).sqrt() - cluster_mass[k].sqrt());
            }
            g
        };

        // Lazy greedy: max-heap of (stale gain, j); re-evaluate on pop.
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;
        #[derive(PartialEq)]
        struct Entry(f64, usize, usize); // (gain, sentence, round computed)
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                // total_cmp gives a real total order on the gains; the old
                // partial_cmp-or-Equal fallback silently collapsed any NaN
                // against *everything*, corrupting the heap invariant. Ties
                // still break toward the lower sentence index.
                self.0.total_cmp(&other.0).then(other.1.cmp(&self.1))
            }
        }

        let mut heap: BinaryHeap<Entry> = (0..num)
            .map(|j| Entry(gain(j, &cover, &cluster_mass), j, 0))
            .collect();
        let mut round = 0usize;

        while selected.len() < budget {
            let Some(Entry(g, j, computed)) = heap.pop() else {
                break;
            };
            if taken[j] {
                continue;
            }
            // Constraint check (cheap, done before re-evaluation).
            let dc = date_counts.get(&sentences[j].date).copied().unwrap_or(0);
            let date_ok = dc > 0 || date_counts.len() < t;
            let slot_ok = dc < n;
            if !date_ok || !slot_ok {
                continue; // permanently infeasible only if state never frees up — it doesn't; drop.
            }
            if computed < round {
                // Stale bound: recompute and push back.
                heap.push(Entry(gain(j, &cover, &cluster_mass), j, round));
                continue;
            }
            if g <= 0.0 {
                break; // monotone objective exhausted
            }
            // Accept j.
            taken[j] = true;
            selected.push(j);
            *date_counts.entry(sentences[j].date).or_insert(0) += 1;
            cover[j] += 1.0;
            for &(i, w) in &sim.rows[j] {
                cover[i as usize] += w as f64;
            }
            if cfg.lambda > 0.0 {
                cluster_mass[cluster_of[j]] += relevance[j];
            }
            round += 1;
        }

        // Assemble: group selected sentences by date.
        let mut by_date: HashMap<Date, Vec<usize>> = HashMap::new();
        for &j in &selected {
            by_date.entry(sentences[j].date).or_default().push(j);
        }
        let entries = by_date
            .into_iter()
            .map(|(d, mut ix)| {
                ix.sort_unstable();
                (
                    d,
                    ix.into_iter().map(|i| sentences[i].text.clone()).collect(),
                )
            })
            .collect();
        Timeline::new(entries)
    }
}

impl TimelineGenerator for TilseBaseline {
    fn name(&self) -> &'static str {
        match self.config.variant {
            SubmodularVariant::Asmds => "ASMDS",
            SubmodularVariant::TlsConstraints => "TLSCONSTRAINTS",
        }
    }

    fn generate(&self, sentences: &[DatedSentence], _query: &str, t: usize, n: usize) -> Timeline {
        if sentences.is_empty() || t == 0 || n == 0 {
            return Timeline::default();
        }
        let texts: Vec<&str> = sentences.iter().map(|s| s.text.as_str()).collect();
        let (_, tokens) = analyze_batch(AnalysisOptions::retrieval(), &texts, true);
        self.generate_with_tokens(sentences, &tokens, t, n)
    }

    fn generate_analyzed(
        &self,
        analysis: &CorpusAnalysis,
        sentences: &[DatedSentence],
        _query: &str,
        t: usize,
        n: usize,
    ) -> Timeline {
        if sentences.is_empty() || t == 0 || n == 0 {
            return Timeline::default();
        }
        self.generate_with_tokens(sentences, &analysis.tokens, t, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tl_nlp::Analyzer;

    fn sent(day: i32, idx: usize, text: &str) -> DatedSentence {
        let date = Date::from_days(17000 + day);
        DatedSentence {
            date,
            pub_date: date,
            article: 0,
            sentence_index: idx,
            text: text.to_string(),
            from_mention: false,
        }
    }

    fn burst_corpus() -> Vec<DatedSentence> {
        let mut c = Vec::new();
        // Event A: day 0, heavy coverage.
        for i in 0..5 {
            c.push(sent(
                0,
                i,
                &format!("ceasefire agreement signed between factions item {i}"),
            ));
        }
        // Event B: day 30.
        for i in 0..4 {
            c.push(sent(
                30,
                i,
                &format!("parliament approved the new constitution draft {i}"),
            ));
        }
        // Noise spread around.
        c.push(sent(10, 0, "markets steady amid light trading"));
        c.push(sent(20, 0, "museum reopened after renovation downtown"));
        c
    }

    #[test]
    fn respects_hard_constraints() {
        let c = burst_corpus();
        for baseline in [TilseBaseline::asmds(), TilseBaseline::tls_constraints()] {
            let tl = baseline.generate(&c, "q", 2, 2);
            assert!(tl.num_dates() <= 2, "{}: {:?}", baseline.name(), tl.dates());
            for (_, s) in &tl.entries {
                assert!(s.len() <= 2);
            }
        }
    }

    #[test]
    fn covers_both_major_events() {
        let c = burst_corpus();
        let tl = TilseBaseline::asmds().generate(&c, "q", 2, 1);
        let dates = tl.dates();
        assert!(dates.contains(&Date::from_days(17000)));
        assert!(dates.contains(&Date::from_days(17030)), "{dates:?}");
    }

    #[test]
    fn saturation_prevents_redundant_picks() {
        // With 2 slots on one day, picking two near-identical sentences
        // yields almost no extra coverage; a diverse pick must win.
        let c = vec![
            sent(
                0,
                0,
                "ceasefire agreement signed between rebel factions today",
            ),
            sent(
                0,
                1,
                "ceasefire agreement signed between rebel factions today",
            ),
            sent(
                0,
                2,
                "aid convoys entered the besieged city delivering food",
            ),
        ];
        let tl = TilseBaseline::tls_constraints().generate(&c, "q", 1, 2);
        let day = &tl.entries[0].1;
        assert_eq!(day.len(), 2);
        assert_ne!(day[0], day[1]);
    }

    #[test]
    fn variants_have_table_names() {
        assert_eq!(TilseBaseline::asmds().name(), "ASMDS");
        assert_eq!(TilseBaseline::tls_constraints().name(), "TLSCONSTRAINTS");
    }

    #[test]
    fn deterministic() {
        let c = burst_corpus();
        let a = TilseBaseline::asmds().generate(&c, "q", 2, 2);
        let b = TilseBaseline::asmds().generate(&c, "q", 2, 2);
        assert_eq!(a.entries, b.entries);
    }

    #[test]
    fn empty_input() {
        assert_eq!(
            TilseBaseline::asmds().generate(&[], "q", 2, 2).num_dates(),
            0
        );
    }

    #[test]
    fn pairwise_matrix_symmetry_and_totals() {
        let mut analyzer = Analyzer::new(AnalysisOptions::retrieval());
        let texts = [
            "ceasefire agreement signed",
            "ceasefire agreement holding",
            "earthquake rubble rescue",
        ];
        let toks: Vec<Vec<u32>> = texts.iter().map(|t| analyzer.analyze(t)).collect();
        let tfidf = TfIdfModel::fit(toks.iter().map(Vec::as_slice));
        let vecs: Vec<SparseVector> = toks.iter().map(|t| tfidf.unit_vector(t)).collect();
        let m = pairwise_similarities(&vecs, 0.0, false);
        // Row totals symmetric contributions: total(0) includes sim(0,1).
        assert!(m.row_total[0] > 0.0);
        assert!((m.row_total[0] - m.row_total[1]).abs() < 1e-9);
        // Unrelated sentence has (near) zero total.
        assert!(m.row_total[2] <= m.row_total[0]);
        // Stored rows are mirrored.
        let has = |i: usize, j: u32| m.rows[i].iter().any(|&(c, _)| c == j);
        assert_eq!(has(0, 1), has(1, 0));
    }

    #[test]
    fn kernel_and_faithful_paths_agree_to_the_bit() {
        // The kernel path and the retained quadratic reference must store
        // identical f32 weights and f64 totals, so both configs produce the
        // same timeline.
        let c = burst_corpus();
        let mut analyzer = Analyzer::new(AnalysisOptions::retrieval());
        let toks: Vec<Vec<u32>> = c.iter().map(|s| analyzer.analyze(&s.text)).collect();
        let tfidf = TfIdfModel::fit(toks.iter().map(Vec::as_slice));
        let vecs: Vec<SparseVector> = toks.iter().map(|t| tfidf.unit_vector(t)).collect();
        let kernel = pairwise_similarities(&vecs, 0.05, false);
        let faithful = pairwise_similarities(&vecs, 0.05, true);
        assert_eq!(kernel.rows, faithful.rows);
        for (a, b) in kernel.row_total.iter().zip(&faithful.row_total) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        for variant in [SubmodularConfig::asmds(), SubmodularConfig::tls_constraints()] {
            let fast = TilseBaseline::new(variant).generate(&c, "q", 2, 2);
            let slow = TilseBaseline::new(variant.with_faithful_quadratic(true))
                .generate(&c, "q", 2, 2);
            assert_eq!(fast.entries, slow.entries);
        }
    }

    #[test]
    fn generate_analyzed_matches_generate() {
        let c = burst_corpus();
        let analysis = CorpusAnalysis::build(&c, true);
        for baseline in [TilseBaseline::asmds(), TilseBaseline::tls_constraints()] {
            let direct = baseline.generate(&c, "q", 2, 2);
            let shared = baseline.generate_analyzed(&analysis, &c, "q", 2, 2);
            assert_eq!(direct.entries, shared.entries, "{}", baseline.name());
        }
    }

    #[test]
    fn budget_exhausts_gracefully() {
        // Ask for far more than the corpus holds.
        let c = vec![sent(0, 0, "single lonely report about the event")];
        let tl = TilseBaseline::tls_constraints().generate(&c, "q", 5, 5);
        assert_eq!(tl.num_dates(), 1);
        assert_eq!(tl.entries[0].1.len(), 1);
    }
}
