//! The supervised **Regression** baseline (Tables 5–6 of the paper, after
//! Wang, Cardie & Marchetti 2015): sentence selection as pointwise linear
//! regression.
//!
//! Each sentence is described by shallow features (centroid similarity,
//! query similarity, article position, length, date report volume); the
//! regression target is the sentence's ROUGE-1 F1 against the ground-truth
//! timeline text. Trained with ridge-regularized least squares (normal
//! equations, hand-rolled Gaussian elimination — no linear-algebra crate).
//! At inference the `t` dates with the highest max-scoring sentences are
//! kept, with the top-`n` sentences each — the paper's standard protocol.
//!
//! Train on one (synthetic) dataset seed and evaluate on another to avoid
//! leakage; the paper's numbers come from cross-validation over the real
//! corpora.

use std::collections::HashMap;
use tl_corpus::{dated_sentences, CorpusAnalysis, Dataset, DatedSentence, Timeline, TimelineGenerator};
use tl_nlp::{analyze_batch, AnalysisOptions, SparseVector, TfIdfModel};
use tl_rouge::scores::rouge_n_tokens;
use tl_rouge::RougeScorer;
use tl_temporal::Date;

/// Number of features (including the bias term).
const NUM_FEATURES: usize = 6;

/// A fitted regression baseline.
#[derive(Debug, Clone)]
pub struct RegressionBaseline {
    weights: [f64; NUM_FEATURES],
}

/// Shallow feature vector of one sentence within its corpus.
fn features(
    s: &DatedSentence,
    vector: &SparseVector,
    token_len: usize,
    centroid: &SparseVector,
    query_vec: &SparseVector,
    date_volume: f64,
) -> [f64; NUM_FEATURES] {
    [
        1.0, // bias
        vector.cosine(centroid),
        vector.cosine(query_vec),
        1.0 / (1.0 + s.sentence_index as f64),
        (token_len as f64 / 30.0).min(1.5),
        date_volume,
    ]
}

/// Per-corpus feature context.
struct FeatureContext {
    vectors: Vec<SparseVector>,
    token_lens: Vec<usize>,
    centroid: SparseVector,
    query_vec: SparseVector,
    date_volume: HashMap<Date, f64>,
}

impl FeatureContext {
    fn build(sentences: &[DatedSentence], query: &str) -> Self {
        let texts: Vec<&str> = sentences.iter().map(|s| s.text.as_str()).collect();
        let (analyzer, tokens) = analyze_batch(AnalysisOptions::retrieval(), &texts, true);
        let query_ids = analyzer.analyze_frozen(query);
        Self::from_tokens(sentences, &tokens, &query_ids)
    }

    /// Build from an already-tokenized corpus (same rows `build` would
    /// produce itself).
    fn from_tokens(sentences: &[DatedSentence], tokens: &[Vec<u32>], query_ids: &[u32]) -> Self {
        let tfidf = TfIdfModel::fit(tokens.iter().map(Vec::as_slice));
        let vectors: Vec<SparseVector> = tokens.iter().map(|t| tfidf.unit_vector(t)).collect();
        let mut centroid = SparseVector::default();
        for v in &vectors {
            centroid.add_assign(v);
        }
        centroid.normalize();
        let query_vec = tfidf.unit_vector(query_ids);
        let mut counts: HashMap<Date, usize> = HashMap::new();
        for s in sentences {
            *counts.entry(s.date).or_insert(0) += 1;
        }
        let max = counts.values().copied().max().unwrap_or(1) as f64;
        let date_volume = counts
            .into_iter()
            .map(|(d, c)| (d, c as f64 / max))
            .collect();
        Self {
            vectors,
            token_lens: tokens.iter().map(Vec::len).collect(),
            centroid,
            query_vec,
            date_volume,
        }
    }

    fn row(&self, i: usize, s: &DatedSentence) -> [f64; NUM_FEATURES] {
        features(
            s,
            &self.vectors[i],
            self.token_lens[i],
            &self.centroid,
            &self.query_vec,
            self.date_volume.get(&s.date).copied().unwrap_or(0.0),
        )
    }
}

/// Solve `(XᵀX + λI) w = Xᵀy` by Gaussian elimination with partial
/// pivoting.
fn ridge_solve(
    xtx: &mut [[f64; NUM_FEATURES]; NUM_FEATURES],
    xty: &mut [f64; NUM_FEATURES],
    lambda: f64,
) -> [f64; NUM_FEATURES] {
    for (d, row) in xtx.iter_mut().enumerate() {
        row[d] += lambda;
    }
    let n = NUM_FEATURES;
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&a, &b| {
                xtx[a][col]
                    .abs()
                    .partial_cmp(&xtx[b][col].abs())
                    .expect("finite")
            })
            .expect("non-empty");
        xtx.swap(col, pivot);
        xty.swap(col, pivot);
        let diag = xtx[col][col];
        if diag.abs() < 1e-12 {
            continue; // degenerate column; ridge term normally prevents this
        }
        for row in (col + 1)..n {
            let factor = xtx[row][col] / diag;
            for k in col..n {
                xtx[row][k] -= factor * xtx[col][k];
            }
            xty[row] -= factor * xty[col];
        }
    }
    // Back substitution.
    let mut w = [0.0f64; NUM_FEATURES];
    for col in (0..n).rev() {
        let mut acc = xty[col];
        for k in (col + 1)..n {
            acc -= xtx[col][k] * w[k];
        }
        w[col] = if xtx[col][col].abs() < 1e-12 {
            0.0
        } else {
            acc / xtx[col][col]
        };
    }
    w
}

impl RegressionBaseline {
    /// Train on every evaluation unit of `dataset`: target is each
    /// sentence's ROUGE-1 F1 against its topic's ground-truth timeline text.
    pub fn train(dataset: &Dataset) -> Self {
        let mut xtx = [[0.0f64; NUM_FEATURES]; NUM_FEATURES];
        let mut xty = [0.0f64; NUM_FEATURES];
        let mut scorer = RougeScorer::new();
        for topic in &dataset.topics {
            let corpus = dated_sentences(&topic.articles, None);
            let ctx = FeatureContext::build(&corpus, &topic.query);
            for gt in &topic.timelines {
                let ref_text: String = gt
                    .entries
                    .iter()
                    .flat_map(|(_, s)| s.iter().cloned())
                    .collect::<Vec<_>>()
                    .join(" ");
                // Tokenize the reference once; per-sentence scoring reuses it.
                let ref_tokens = scorer.tokens(&ref_text);
                for (i, s) in corpus.iter().enumerate() {
                    let x = ctx.row(i, s);
                    let sent_tokens = scorer.tokens(&s.text);
                    let y = rouge_n_tokens(1, &sent_tokens, &ref_tokens).f1;
                    for a in 0..NUM_FEATURES {
                        for b in 0..NUM_FEATURES {
                            xtx[a][b] += x[a] * x[b];
                        }
                        xty[a] += x[a] * y;
                    }
                }
            }
        }
        let weights = ridge_solve(&mut xtx, &mut xty, 1e-3);
        Self { weights }
    }

    /// Construct from explicit weights (tests / persisted models).
    pub fn from_weights(weights: [f64; NUM_FEATURES]) -> Self {
        Self { weights }
    }

    /// The learned weights `[bias, centroid, query, position, length,
    /// volume]`.
    pub fn weights(&self) -> &[f64; NUM_FEATURES] {
        &self.weights
    }

    fn score(&self, x: &[f64; NUM_FEATURES]) -> f64 {
        x.iter().zip(self.weights.iter()).map(|(a, b)| a * b).sum()
    }
}

impl RegressionBaseline {
    fn generate_with_ctx(
        &self,
        ctx: &FeatureContext,
        sentences: &[DatedSentence],
        t: usize,
        n: usize,
    ) -> Timeline {
        let scores: Vec<f64> = sentences
            .iter()
            .enumerate()
            .map(|(i, s)| self.score(&ctx.row(i, s)))
            .collect();
        let mut by_date: HashMap<Date, Vec<usize>> = HashMap::new();
        for (i, s) in sentences.iter().enumerate() {
            by_date.entry(s.date).or_default().push(i);
        }
        let mut date_rank: Vec<(Date, f64)> = by_date
            .iter()
            .map(|(d, ix)| {
                let best = ix
                    .iter()
                    .map(|&i| scores[i])
                    .fold(f64::NEG_INFINITY, f64::max);
                (*d, best)
            })
            .collect();
        date_rank.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let mut selected: Vec<Date> = date_rank.into_iter().take(t).map(|(d, _)| d).collect();
        selected.sort_unstable();
        let entries = selected
            .into_iter()
            .map(|d| {
                let mut ix = by_date[&d].clone();
                ix.sort_by(|&a, &b| {
                    scores[b]
                        .partial_cmp(&scores[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                ix.truncate(n);
                (
                    d,
                    ix.into_iter().map(|i| sentences[i].text.clone()).collect(),
                )
            })
            .collect();
        Timeline::new(entries)
    }
}

impl TimelineGenerator for RegressionBaseline {
    fn name(&self) -> &'static str {
        "Regression"
    }

    fn generate(&self, sentences: &[DatedSentence], query: &str, t: usize, n: usize) -> Timeline {
        if sentences.is_empty() || t == 0 || n == 0 {
            return Timeline::default();
        }
        let ctx = FeatureContext::build(sentences, query);
        self.generate_with_ctx(&ctx, sentences, t, n)
    }

    fn generate_analyzed(
        &self,
        analysis: &CorpusAnalysis,
        sentences: &[DatedSentence],
        query: &str,
        t: usize,
        n: usize,
    ) -> Timeline {
        if sentences.is_empty() || t == 0 || n == 0 {
            return Timeline::default();
        }
        let query_ids = analysis.analyzer.analyze_frozen(query);
        let ctx = FeatureContext::from_tokens(sentences, &analysis.tokens, &query_ids);
        self.generate_with_ctx(&ctx, sentences, t, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tl_corpus::{generate, SynthConfig};

    #[test]
    fn ridge_solver_recovers_known_weights() {
        // y = 2*x1 - 3*x2 + 0.5 with exact features.
        let truth = [0.5, 2.0, -3.0, 0.0, 0.0, 0.0];
        let mut xtx = [[0.0; NUM_FEATURES]; NUM_FEATURES];
        let mut xty = [0.0; NUM_FEATURES];
        // Deterministic pseudo-random sample points.
        for k in 0..200 {
            let x1 = ((k * 37 % 101) as f64) / 101.0;
            let x2 = ((k * 53 % 97) as f64) / 97.0;
            let x = [1.0, x1, x2, x1 * 0.0, 0.0, 0.0];
            let y: f64 = truth.iter().zip(&x).map(|(a, b)| a * b).sum();
            for a in 0..NUM_FEATURES {
                for b in 0..NUM_FEATURES {
                    xtx[a][b] += x[a] * x[b];
                }
                xty[a] += x[a] * y;
            }
        }
        let w = ridge_solve(&mut xtx, &mut xty, 1e-9);
        assert!((w[0] - 0.5).abs() < 1e-4, "{w:?}");
        assert!((w[1] - 2.0).abs() < 1e-4, "{w:?}");
        assert!((w[2] + 3.0).abs() < 1e-4, "{w:?}");
    }

    #[test]
    fn trains_and_generates_valid_timelines() {
        let train = generate(&SynthConfig::tiny().with_seed(100));
        let model = RegressionBaseline::train(&train);
        // Content features must carry signal: centroid or query weight > 0.
        let w = model.weights();
        assert!(
            w[1] > 0.0 || w[2] > 0.0,
            "no positive content weight learned: {w:?}"
        );

        let eval = generate(&SynthConfig::tiny().with_seed(200));
        let topic = &eval.topics[0];
        let corpus = dated_sentences(&topic.articles, None);
        let tl = model.generate(&corpus, &topic.query, 5, 2);
        assert!(tl.num_dates() > 0 && tl.num_dates() <= 5);
        for (_, s) in &tl.entries {
            assert!(s.len() <= 2 && !s.is_empty());
        }
    }

    #[test]
    fn deterministic() {
        let train = generate(&SynthConfig::tiny().with_seed(100));
        let a = RegressionBaseline::train(&train);
        let b = RegressionBaseline::train(&train);
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn empty_input() {
        let m = RegressionBaseline::from_weights([0.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
        assert_eq!(m.generate(&[], "q", 3, 2).num_dates(), 0);
    }
}
