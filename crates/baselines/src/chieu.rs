//! Chieu & Lee 2004: query-based event extraction along a timeline.
//!
//! Their system ranks sentences by *interest* — the summed similarity to
//! other sentences whose dates fall within a ±`window`-day neighborhood
//! (reporting "bursts" mark important events) — and reports the top
//! sentences date by date. Duplicate days are collapsed; the `t` most
//! interesting dates survive with their `n` most interesting sentences.

use crate::mead::pub_dated_indices;
use std::collections::HashMap;
use tl_corpus::{CorpusAnalysis, DatedSentence, Timeline, TimelineGenerator};
use tl_nlp::{analyze_batch, AnalysisOptions, SparseVector, TfIdfModel};
use tl_temporal::Date;

/// The Chieu & Lee baseline.
#[derive(Debug, Clone)]
pub struct ChieuBaseline {
    /// Burst window in days (the original uses ±10).
    pub window: u32,
}

impl Default for ChieuBaseline {
    fn default() -> Self {
        Self { window: 10 }
    }
}

impl ChieuBaseline {
    // The windowed interest sweep stays on direct `cosine` calls: its
    // accumulation interleaves pairs in date order, which the row-ordered
    // kernel merge could not replay bit-for-bit.
    fn generate_with_tokens(
        &self,
        sentences: &[DatedSentence],
        tokens: &[Vec<u32>],
        t: usize,
        n: usize,
    ) -> Timeline {
        let tfidf = TfIdfModel::fit(tokens.iter().map(Vec::as_slice));
        let vectors: Vec<SparseVector> = tokens.iter().map(|tk| tfidf.unit_vector(tk)).collect();

        // Sort sentence indices by date for windowed interest computation.
        let mut order: Vec<usize> = (0..sentences.len()).collect();
        order.sort_by_key(|&i| sentences[i].date);

        // interest(i) = Σ_{j : |date_j − date_i| ≤ window} sim(i, j).
        // Two-pointer sweep keeps it to the in-window pairs only.
        let mut interest = vec![0.0f64; sentences.len()];
        let days: Vec<i32> = order.iter().map(|&i| sentences[i].date.days()).collect();
        let mut lo = 0usize;
        for a in 0..order.len() {
            while days[a] - days[lo] > self.window as i32 {
                lo += 1;
            }
            for b in lo..a {
                let (i, j) = (order[a], order[b]);
                let sim = vectors[i].cosine(&vectors[j]);
                if sim > 0.0 {
                    interest[i] += sim;
                    interest[j] += sim;
                }
            }
        }

        // Date interest = max sentence interest on the date.
        let mut by_date: HashMap<Date, Vec<usize>> = HashMap::new();
        for (i, s) in sentences.iter().enumerate() {
            by_date.entry(s.date).or_default().push(i);
        }
        let mut date_rank: Vec<(Date, f64)> = by_date
            .iter()
            .map(|(d, ix)| {
                let best = ix
                    .iter()
                    .map(|&i| interest[i])
                    .fold(f64::NEG_INFINITY, f64::max);
                (*d, best)
            })
            .collect();
        date_rank.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let mut selected: Vec<Date> = date_rank.into_iter().take(t).map(|(d, _)| d).collect();
        selected.sort_unstable();

        let entries = selected
            .into_iter()
            .map(|d| {
                let mut ix = by_date[&d].clone();
                ix.sort_by(|&a, &b| {
                    interest[b]
                        .partial_cmp(&interest[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                ix.truncate(n);
                (
                    d,
                    ix.into_iter().map(|i| sentences[i].text.clone()).collect(),
                )
            })
            .collect();
        Timeline::new(entries)
    }
}

impl TimelineGenerator for ChieuBaseline {
    fn name(&self) -> &'static str {
        "Chieu et al."
    }

    fn generate(&self, sentences: &[DatedSentence], _query: &str, t: usize, n: usize) -> Timeline {
        if sentences.is_empty() || t == 0 || n == 0 {
            return Timeline::default();
        }
        // Pre-HeidelTime system: operates on publication-date pairings only
        // (no temporal tagging existed for it), like the original.
        let keep = pub_dated_indices(sentences);
        if keep.is_empty() {
            return Timeline::default();
        }
        let kept: Vec<DatedSentence> = keep.iter().map(|&i| sentences[i].clone()).collect();
        let texts: Vec<&str> = kept.iter().map(|s| s.text.as_str()).collect();
        let (_, tokens) = analyze_batch(AnalysisOptions::retrieval(), &texts, true);
        self.generate_with_tokens(&kept, &tokens, t, n)
    }

    fn generate_analyzed(
        &self,
        analysis: &CorpusAnalysis,
        sentences: &[DatedSentence],
        _query: &str,
        t: usize,
        n: usize,
    ) -> Timeline {
        if sentences.is_empty() || t == 0 || n == 0 {
            return Timeline::default();
        }
        let keep = pub_dated_indices(sentences);
        if keep.is_empty() {
            return Timeline::default();
        }
        let kept: Vec<DatedSentence> = keep.iter().map(|&i| sentences[i].clone()).collect();
        let sub = analysis.subset(&keep);
        self.generate_with_tokens(&kept, &sub.tokens, t, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent(day: i32, text: &str) -> DatedSentence {
        let date = Date::from_days(17000 + day);
        DatedSentence {
            date,
            pub_date: date,
            article: 0,
            sentence_index: 0,
            text: text.to_string(),
            from_mention: false,
        }
    }

    #[test]
    fn burst_date_beats_quiet_date() {
        // Day 0–2: a burst of similar reporting. Day 40: one stray note.
        let corpus = vec![
            sent(0, "explosion rocked the oil refinery near the port"),
            sent(1, "the refinery explosion at the port injured workers"),
            sent(2, "port refinery explosion investigation continues"),
            sent(40, "quiet municipal budget meeting concluded"),
        ];
        let tl = ChieuBaseline::default().generate(&corpus, "q", 1, 1);
        assert!(tl.dates()[0] <= Date::from_days(17002));
        assert!(
            tl.entries[0].1[0].contains("explosion") || tl.entries[0].1[0].contains("refinery")
        );
    }

    #[test]
    fn window_limits_interest() {
        // Two similar sentences 100 days apart contribute nothing to each
        // other inside a 10-day window.
        let corpus = vec![
            sent(0, "ceasefire agreement signed between factions"),
            sent(100, "ceasefire agreement signed between factions"),
            sent(1, "ceasefire holding in the capital region"),
        ];
        let small = ChieuBaseline { window: 10 };
        let tl = small.generate(&corpus, "q", 1, 1);
        // Days 0-1 reinforce each other; day 100 is isolated.
        assert!(tl.dates()[0] <= Date::from_days(17001));
    }

    #[test]
    fn shape_and_determinism() {
        let corpus: Vec<DatedSentence> = (0..25)
            .map(|i| sent(i % 5, &format!("event update number {i} from the field")))
            .collect();
        let a = ChieuBaseline::default().generate(&corpus, "q", 3, 2);
        let b = ChieuBaseline::default().generate(&corpus, "q", 3, 2);
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.num_dates(), 3);
        for (_, s) in &a.entries {
            assert!(s.len() <= 2);
        }
    }

    #[test]
    fn empty_input() {
        assert_eq!(
            ChieuBaseline::default()
                .generate(&[], "q", 2, 2)
                .num_dates(),
            0
        );
    }

    #[test]
    fn generate_analyzed_matches_generate() {
        let mut corpus: Vec<DatedSentence> = (0..25)
            .map(|i| sent(i % 5, &format!("event update number {i} from the field")))
            .collect();
        for s in corpus.iter_mut().skip(1).step_by(3) {
            s.from_mention = true;
        }
        let analysis = CorpusAnalysis::build(&corpus, true);
        let direct = ChieuBaseline::default().generate(&corpus, "q", 3, 2);
        let shared = ChieuBaseline::default().generate_analyzed(&analysis, &corpus, "q", 3, 2);
        assert_eq!(direct.entries, shared.entries);
    }
}
