//! The Random baseline: random date selection, random sentence selection.
//!
//! Table 5's weakest row — it anchors the ROUGE scale for the dataset.

use tl_support::rng::Rng;
use std::collections::HashMap;
use tl_corpus::{DatedSentence, Timeline, TimelineGenerator};
use tl_temporal::Date;

/// Random timeline generator (deterministic given its seed).
#[derive(Debug, Clone)]
pub struct RandomBaseline {
    seed: u64,
}

impl RandomBaseline {
    /// Create with a seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl Default for RandomBaseline {
    fn default() -> Self {
        Self::new(0x5EED)
    }
}

impl TimelineGenerator for RandomBaseline {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn generate(&self, sentences: &[DatedSentence], _query: &str, t: usize, n: usize) -> Timeline {
        if sentences.is_empty() || t == 0 || n == 0 {
            return Timeline::default();
        }
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut by_date: HashMap<Date, Vec<usize>> = HashMap::new();
        for (i, s) in sentences.iter().enumerate() {
            by_date.entry(s.date).or_default().push(i);
        }
        let mut dates: Vec<Date> = by_date.keys().copied().collect();
        dates.sort_unstable();
        rng.shuffle(&mut dates);
        dates.truncate(t);
        dates.sort_unstable();
        let entries = dates
            .into_iter()
            .map(|d| {
                let mut pool = by_date[&d].clone();
                rng.shuffle(&mut pool);
                pool.truncate(n);
                let sents = pool
                    .into_iter()
                    .map(|i| sentences[i].text.clone())
                    .collect();
                (d, sents)
            })
            .collect();
        Timeline::new(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<DatedSentence> {
        (0usize..40)
            .map(|i| {
                let date = Date::from_days(17000 + (i % 10) as i32);
                DatedSentence {
                    date,
                    pub_date: date,
                    article: 0,
                    sentence_index: i,
                    text: format!("sentence number {i} about events"),
                    from_mention: false,
                }
            })
            .collect()
    }

    #[test]
    fn respects_t_and_n() {
        let c = corpus();
        let tl = RandomBaseline::new(1).generate(&c, "q", 4, 2);
        assert_eq!(tl.num_dates(), 4);
        for (_, s) in &tl.entries {
            assert!(s.len() <= 2 && !s.is_empty());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let c = corpus();
        let a = RandomBaseline::new(9).generate(&c, "q", 4, 2);
        let b = RandomBaseline::new(9).generate(&c, "q", 4, 2);
        assert_eq!(a.entries, b.entries);
        let other = RandomBaseline::new(10).generate(&c, "q", 4, 2);
        assert!(a.entries != other.entries || a.dates() == other.dates());
    }

    #[test]
    fn empty_inputs() {
        let tl = RandomBaseline::default().generate(&[], "q", 3, 2);
        assert_eq!(tl.num_dates(), 0);
        let c = corpus();
        assert_eq!(
            RandomBaseline::default()
                .generate(&c, "q", 0, 2)
                .num_dates(),
            0
        );
    }

    #[test]
    fn more_dates_requested_than_available() {
        let c = corpus(); // 10 distinct dates
        let tl = RandomBaseline::default().generate(&c, "q", 50, 1);
        assert_eq!(tl.num_dates(), 10);
    }
}
