//! ETS — Evolutionary Timeline Summarization (Yan et al., SIGIR 2011).
//!
//! ETS frames timeline generation as a balanced optimization over four
//! heuristics — *relevance* (to the query/corpus), *coverage* (of the
//! corpus content), *coherence* (with temporally adjacent summaries) and
//! *diversity* (within the selection) — solved by **iterative
//! substitution**: start from a seed selection, repeatedly try replacing a
//! selected sentence with a candidate that improves the combined objective,
//! stop at a local optimum.

use crate::mead::pub_dated_indices;
use std::collections::HashMap;
use tl_corpus::{CorpusAnalysis, DatedSentence, Timeline, TimelineGenerator};
use tl_nlp::{allpairs_cosine, analyze_batch, AnalysisOptions, SimilarityMatrix, SparseVector, TfIdfModel};
use tl_temporal::Date;

/// Objective weights.
#[derive(Debug, Clone, Copy)]
pub struct EtsWeights {
    /// Similarity to the topic query.
    pub relevance: f64,
    /// Similarity to the corpus centroid (collection coverage, as in the
    /// original: the objective measures how well the timeline covers the
    /// whole collection, not each day's content).
    pub coverage: f64,
    /// Similarity to the summaries of adjacent selected dates.
    pub coherence: f64,
    /// Penalty weight on the max similarity to other selected sentences.
    pub diversity: f64,
}

impl Default for EtsWeights {
    fn default() -> Self {
        Self {
            relevance: 1.0,
            coverage: 1.0,
            coherence: 0.5,
            diversity: 1.0,
        }
    }
}

/// The ETS baseline.
#[derive(Debug, Clone)]
pub struct EtsBaseline {
    weights: EtsWeights,
    /// Substitution sweeps before stopping.
    max_rounds: usize,
}

impl Default for EtsBaseline {
    fn default() -> Self {
        Self {
            weights: EtsWeights::default(),
            max_rounds: 5,
        }
    }
}

impl EtsBaseline {
    /// Create with custom weights and round budget.
    pub fn new(weights: EtsWeights, max_rounds: usize) -> Self {
        Self {
            weights,
            max_rounds,
        }
    }
}

struct Ctx<'a> {
    sentences: &'a [DatedSentence],
    /// Per-sentence similarity to the query vector, hoisted out of `gain`.
    relevance: Vec<f64>,
    /// Per-sentence similarity to the corpus centroid, hoisted likewise.
    coverage: Vec<f64>,
    /// Kernel similarity matrix over the pool-union sentences (threshold
    /// 0.0: every positive cosine stored; TF-IDF weights are positive, so
    /// an absent pair has cosine exactly 0.0 — same bits as computing it).
    sim: SimilarityMatrix,
    /// Sentence index → row in `sim` (u32::MAX for non-pool sentences,
    /// which `gain` never touches).
    pool_row: Vec<u32>,
    by_date: HashMap<Date, Vec<usize>>,
}

impl Ctx<'_> {
    /// Cosine between two pool sentences, carrying `SparseVector::cosine`'s
    /// exact bits (proven by the kernel's differential suite).
    fn pair_sim(&self, a: usize, b: usize) -> f64 {
        self.sim
            .sim(self.pool_row[a] as usize, self.pool_row[b] as usize)
    }
}

impl EtsBaseline {
    /// Objective value of choosing sentence `cand` for date slot `slot`
    /// given the other current selections.
    fn gain(&self, ctx: &Ctx<'_>, selection: &[Vec<usize>], slot: usize, cand: usize) -> f64 {
        let w = &self.weights;
        let relevance = ctx.relevance[cand];
        let coverage = ctx.coverage[cand];
        // Coherence with neighbor-day selections.
        let mut coherence = 0.0;
        let mut neighbors = 0usize;
        for adj in [slot.wrapping_sub(1), slot + 1] {
            if let Some(sel) = selection.get(adj) {
                for &j in sel {
                    coherence += ctx.pair_sim(cand, j);
                    neighbors += 1;
                }
            }
        }
        if neighbors > 0 {
            coherence /= neighbors as f64;
        }
        // Diversity penalty: max similarity to any *other* selected sentence.
        let mut max_sim = 0.0f64;
        for (s, sel) in selection.iter().enumerate() {
            for &j in sel {
                if s == slot && j == cand {
                    continue;
                }
                max_sim = max_sim.max(ctx.pair_sim(cand, j));
            }
        }
        w.relevance * relevance + w.coverage * coverage + w.coherence * coherence
            - w.diversity * max_sim
    }
}

impl EtsBaseline {
    fn generate_with_tokens(
        &self,
        sentences: &[DatedSentence],
        tokens: &[Vec<u32>],
        query_ids: &[u32],
        t: usize,
        n: usize,
    ) -> Timeline {
        let tfidf = TfIdfModel::fit(tokens.iter().map(Vec::as_slice));
        let vectors: Vec<SparseVector> = tokens.iter().map(|tk| tfidf.unit_vector(tk)).collect();
        let query_vec = tfidf.unit_vector(query_ids);

        let mut by_date: HashMap<Date, Vec<usize>> = HashMap::new();
        for (i, s) in sentences.iter().enumerate() {
            by_date.entry(s.date).or_default().push(i);
        }
        // Date pre-selection: report volume (the occurrence signal ETS's
        // evolutionary stage starts from).
        let mut date_rank: Vec<(Date, usize)> =
            by_date.iter().map(|(d, ix)| (*d, ix.len())).collect();
        date_rank.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut dates: Vec<Date> = date_rank.into_iter().take(t).map(|(d, _)| d).collect();
        dates.sort_unstable();

        let corpus_centroid = {
            let mut c = SparseVector::default();
            for v in &vectors {
                c.add_assign(v);
            }
            c.normalize();
            c
        };

        // Hoist the per-candidate query/centroid cosines out of the
        // substitution loop (same calls, computed once each).
        let relevance: Vec<f64> = vectors.iter().map(|v| v.cosine(&query_vec)).collect();
        let coverage: Vec<f64> = vectors.iter().map(|v| v.cosine(&corpus_centroid)).collect();

        // Sentence-to-sentence cosines only ever involve pool sentences
        // (candidates and selections both come from the chosen dates), so
        // run the kernel over the pool union instead of the full corpus.
        let pool: Vec<usize> = {
            let mut p: Vec<usize> = dates.iter().flat_map(|d| by_date[d].iter().copied()).collect();
            p.sort_unstable();
            p
        };
        let mut pool_row = vec![u32::MAX; sentences.len()];
        for (row, &i) in pool.iter().enumerate() {
            pool_row[i] = row as u32;
        }
        let pool_vectors: Vec<SparseVector> = pool.iter().map(|&i| vectors[i].clone()).collect();
        let sim = allpairs_cosine(&pool_vectors, 0.0, true);

        let ctx = Ctx {
            sentences,
            relevance,
            coverage,
            sim,
            pool_row,
            by_date,
        };

        // Seed: first n sentences per day (document order).
        let mut selection: Vec<Vec<usize>> = dates
            .iter()
            .map(|d| ctx.by_date[d].iter().copied().take(n).collect())
            .collect();

        // Iterative substitution until a sweep makes no improvement.
        for _ in 0..self.max_rounds {
            let mut improved = false;
            for slot in 0..dates.len() {
                let pool = ctx.by_date[&dates[slot]].clone();
                for pos in 0..selection[slot].len() {
                    let current = selection[slot][pos];
                    let current_gain = self.gain(&ctx, &selection, slot, current);
                    let mut best = (current, current_gain);
                    for &cand in &pool {
                        if selection[slot].contains(&cand) {
                            continue;
                        }
                        let g = self.gain(&ctx, &selection, slot, cand);
                        if g > best.1 + 1e-12 {
                            best = (cand, g);
                        }
                    }
                    if best.0 != current {
                        selection[slot][pos] = best.0;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }

        let entries = dates
            .into_iter()
            .zip(selection)
            .filter(|(_, sel)| !sel.is_empty())
            .map(|(d, sel)| {
                (
                    d,
                    sel.into_iter()
                        .map(|i| ctx.sentences[i].text.clone())
                        .collect(),
                )
            })
            .collect();
        Timeline::new(entries)
    }
}

impl TimelineGenerator for EtsBaseline {
    fn name(&self) -> &'static str {
        "ETS"
    }

    fn generate(&self, sentences: &[DatedSentence], query: &str, t: usize, n: usize) -> Timeline {
        if sentences.is_empty() || t == 0 || n == 0 {
            return Timeline::default();
        }
        // Pre-HeidelTime system: operates on publication-date pairings only
        // (no temporal tagging existed for it), like the original.
        let keep = pub_dated_indices(sentences);
        if keep.is_empty() {
            return Timeline::default();
        }
        let kept: Vec<DatedSentence> = keep.iter().map(|&i| sentences[i].clone()).collect();
        let texts: Vec<&str> = kept.iter().map(|s| s.text.as_str()).collect();
        let (analyzer, tokens) = analyze_batch(AnalysisOptions::retrieval(), &texts, true);
        let query_ids = analyzer.analyze_frozen(query);
        self.generate_with_tokens(&kept, &tokens, &query_ids, t, n)
    }

    fn generate_analyzed(
        &self,
        analysis: &CorpusAnalysis,
        sentences: &[DatedSentence],
        query: &str,
        t: usize,
        n: usize,
    ) -> Timeline {
        if sentences.is_empty() || t == 0 || n == 0 {
            return Timeline::default();
        }
        let keep = pub_dated_indices(sentences);
        if keep.is_empty() {
            return Timeline::default();
        }
        let kept: Vec<DatedSentence> = keep.iter().map(|&i| sentences[i].clone()).collect();
        let sub = analysis.subset(&keep);
        let query_ids = sub.analyzer.analyze_frozen(query);
        self.generate_with_tokens(&kept, &sub.tokens, &query_ids, t, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent(day: i32, idx: usize, text: &str) -> DatedSentence {
        let date = Date::from_days(17000 + day);
        DatedSentence {
            date,
            pub_date: date,
            article: 0,
            sentence_index: idx,
            text: text.to_string(),
            from_mention: false,
        }
    }

    #[test]
    fn substitution_prefers_query_relevant() {
        // Seed picks document order; substitution should swap in the
        // query-relevant sentence.
        let corpus = vec![
            sent(0, 0, "the annual flower show opened downtown"),
            sent(
                0,
                1,
                "ceasefire negotiations between rebel factions resumed",
            ),
            sent(0, 2, "ceasefire talks with rebel leaders progressed"),
        ];
        let tl = EtsBaseline::default().generate(&corpus, "ceasefire rebel negotiations", 1, 1);
        assert!(tl.entries[0].1[0].contains("ceasefire"), "{:?}", tl.entries);
    }

    #[test]
    fn busiest_dates_selected() {
        let mut corpus = Vec::new();
        for i in 0..6 {
            corpus.push(sent(0, i, &format!("major event report {i} with details")));
        }
        corpus.push(sent(9, 0, "lone minor note"));
        let tl = EtsBaseline::default().generate(&corpus, "event", 1, 2);
        assert_eq!(tl.dates()[0], Date::from_days(17000));
    }

    #[test]
    fn diversity_avoids_duplicates() {
        let corpus = vec![
            sent(0, 0, "identical summit report about leaders meeting"),
            sent(0, 1, "identical summit report about leaders meeting"),
            sent(0, 2, "separate protest coverage from the capital square"),
        ];
        let tl = EtsBaseline::default().generate(&corpus, "summit protest", 1, 2);
        let day = &tl.entries[0].1;
        assert_eq!(day.len(), 2);
        assert_ne!(day[0], day[1]);
    }

    #[test]
    fn shape_and_determinism() {
        let corpus: Vec<DatedSentence> = (0..30)
            .map(|i| {
                sent(
                    i % 5,
                    i as usize,
                    &format!("field report {i} about the operation"),
                )
            })
            .collect();
        let a = EtsBaseline::default().generate(&corpus, "operation", 3, 2);
        let b = EtsBaseline::default().generate(&corpus, "operation", 3, 2);
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.num_dates(), 3);
    }

    #[test]
    fn empty_input() {
        assert_eq!(
            EtsBaseline::default().generate(&[], "q", 3, 2).num_dates(),
            0
        );
    }

    #[test]
    fn generate_analyzed_matches_generate() {
        let mut corpus: Vec<DatedSentence> = (0..30)
            .map(|i| {
                sent(
                    i % 5,
                    i as usize,
                    &format!("field report {i} about the operation in the region"),
                )
            })
            .collect();
        for s in corpus.iter_mut().skip(2).step_by(4) {
            s.from_mention = true;
        }
        let analysis = CorpusAnalysis::build(&corpus, true);
        let direct = EtsBaseline::default().generate(&corpus, "operation region", 3, 2);
        let shared =
            EtsBaseline::default().generate_analyzed(&analysis, &corpus, "operation region", 3, 2);
        assert_eq!(direct.entries, shared.entries);
    }
}
