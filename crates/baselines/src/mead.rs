//! MEAD-style centroid summarization (Radev, Jing, Styś & Tam 2004).
//!
//! MEAD scores each sentence by (a) similarity to the corpus *centroid*
//! (the TF-IDF average of all sentences — the topic's lexical center of
//! mass), (b) position within its article (leads matter in news), and
//! (c) length (very short fragments are penalized). Adapted to the
//! timeline protocol the same way the paper's comparison does: the `t`
//! dates with the highest total sentence scores are selected, then the
//! top-`n` sentences per selected date.

use std::collections::HashMap;
use tl_corpus::{CorpusAnalysis, DatedSentence, Timeline, TimelineGenerator};
use tl_nlp::{analyze_batch, AnalysisOptions, SparseVector, TfIdfModel};
use tl_temporal::Date;

/// MEAD configuration weights (the classic linear combination).
#[derive(Debug, Clone, Copy)]
pub struct MeadWeights {
    /// Centroid-similarity weight.
    pub centroid: f64,
    /// First-sentence / position weight.
    pub position: f64,
    /// Length-penalty weight (sentences below `min_words` score 0).
    pub min_words: usize,
}

impl Default for MeadWeights {
    fn default() -> Self {
        Self {
            centroid: 1.0,
            position: 0.5,
            min_words: 4,
        }
    }
}

/// The MEAD baseline.
#[derive(Debug, Clone, Default)]
pub struct MeadBaseline {
    weights: MeadWeights,
}

impl MeadBaseline {
    /// Create with custom weights.
    pub fn new(weights: MeadWeights) -> Self {
        Self { weights }
    }
}

/// Indices of the publication-dated sentences the pre-HeidelTime baselines
/// operate on (no temporal tagging existed for them, like the originals).
pub(crate) fn pub_dated_indices(sentences: &[DatedSentence]) -> Vec<usize> {
    sentences
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.from_mention)
        .map(|(i, _)| i)
        .collect()
}

impl MeadBaseline {
    fn generate_with_tokens(
        &self,
        sentences: &[DatedSentence],
        tokens: &[Vec<u32>],
        t: usize,
        n: usize,
    ) -> Timeline {
        let tfidf = TfIdfModel::fit(tokens.iter().map(Vec::as_slice));
        let vectors: Vec<SparseVector> = tokens.iter().map(|tk| tfidf.unit_vector(tk)).collect();

        // Corpus centroid.
        let mut centroid = SparseVector::default();
        for v in &vectors {
            centroid.add_assign(v);
        }
        centroid.normalize();

        // Per-sentence MEAD score.
        let scores: Vec<f64> = sentences
            .iter()
            .zip(&vectors)
            .zip(tokens)
            .map(|((s, v), tk)| {
                if tk.len() < self.weights.min_words {
                    return 0.0;
                }
                let c = v.cosine(&centroid);
                let p = 1.0 / (1.0 + s.sentence_index as f64);
                self.weights.centroid * c + self.weights.position * p
            })
            .collect();

        // Date salience = total score mass on that date.
        let mut by_date: HashMap<Date, Vec<usize>> = HashMap::new();
        for (i, s) in sentences.iter().enumerate() {
            by_date.entry(s.date).or_default().push(i);
        }
        let mut date_scores: Vec<(Date, f64)> = by_date
            .iter()
            .map(|(d, ix)| (*d, ix.iter().map(|&i| scores[i]).sum()))
            .collect();
        date_scores.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let mut selected: Vec<Date> = date_scores.into_iter().take(t).map(|(d, _)| d).collect();
        selected.sort_unstable();

        let entries = selected
            .into_iter()
            .map(|d| {
                let mut ix = by_date[&d].clone();
                ix.sort_by(|&a, &b| {
                    scores[b]
                        .partial_cmp(&scores[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                ix.truncate(n);
                (
                    d,
                    ix.into_iter().map(|i| sentences[i].text.clone()).collect(),
                )
            })
            .collect();
        Timeline::new(entries)
    }
}

impl TimelineGenerator for MeadBaseline {
    fn name(&self) -> &'static str {
        "MEAD"
    }

    fn generate(&self, sentences: &[DatedSentence], _query: &str, t: usize, n: usize) -> Timeline {
        if sentences.is_empty() || t == 0 || n == 0 {
            return Timeline::default();
        }
        let keep = pub_dated_indices(sentences);
        if keep.is_empty() {
            return Timeline::default();
        }
        let kept: Vec<DatedSentence> = keep.iter().map(|&i| sentences[i].clone()).collect();
        let texts: Vec<&str> = kept.iter().map(|s| s.text.as_str()).collect();
        let (_, tokens) = analyze_batch(AnalysisOptions::retrieval(), &texts, true);
        self.generate_with_tokens(&kept, &tokens, t, n)
    }

    fn generate_analyzed(
        &self,
        analysis: &CorpusAnalysis,
        sentences: &[DatedSentence],
        _query: &str,
        t: usize,
        n: usize,
    ) -> Timeline {
        if sentences.is_empty() || t == 0 || n == 0 {
            return Timeline::default();
        }
        let keep = pub_dated_indices(sentences);
        if keep.is_empty() {
            return Timeline::default();
        }
        let kept: Vec<DatedSentence> = keep.iter().map(|&i| sentences[i].clone()).collect();
        let sub = analysis.subset(&keep);
        self.generate_with_tokens(&kept, &sub.tokens, t, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent(day: i32, idx: usize, text: &str) -> DatedSentence {
        let date = Date::from_days(17000 + day);
        DatedSentence {
            date,
            pub_date: date,
            article: 0,
            sentence_index: idx,
            text: text.to_string(),
            from_mention: false,
        }
    }

    #[test]
    fn central_date_selected_over_noise_date() {
        // Day 0: three mutually similar "summit" sentences (centroid-heavy).
        // Day 5: one unrelated fragment.
        let corpus = vec![
            sent(0, 0, "summit talks between leaders on nuclear weapons"),
            sent(0, 1, "leaders held summit talks about nuclear weapons"),
            sent(0, 2, "nuclear weapons summit talks continued all day"),
            sent(5, 0, "weather mild"),
        ];
        let tl = MeadBaseline::default().generate(&corpus, "q", 1, 2);
        assert_eq!(tl.num_dates(), 1);
        assert_eq!(tl.dates()[0], Date::from_days(17000));
    }

    #[test]
    fn position_breaks_ties() {
        // Two identical sentences; the earlier article position wins.
        let corpus = vec![
            sent(0, 3, "summit talks on nuclear weapons held today"),
            sent(0, 0, "summit talks on nuclear weapons held today"),
            sent(0, 2, "unrelated background noise filler words here"),
        ];
        let tl = MeadBaseline::default().generate(&corpus, "q", 1, 1);
        assert_eq!(tl.entries[0].1.len(), 1);
        // The selected sentence is one of the duplicates (index 1 in corpus,
        // sentence_index 0 scores highest).
        assert!(tl.entries[0].1[0].contains("summit"));
    }

    #[test]
    fn short_fragments_score_zero() {
        let corpus = vec![
            sent(0, 0, "ok"),
            sent(
                0,
                1,
                "summit negotiations between delegations continued today",
            ),
        ];
        let tl = MeadBaseline::default().generate(&corpus, "q", 1, 1);
        assert!(tl.entries[0].1[0].contains("negotiations"));
    }

    #[test]
    fn respects_shape_and_determinism() {
        let corpus: Vec<DatedSentence> = (0..30)
            .map(|i| {
                sent(
                    i % 6,
                    i as usize,
                    &format!("report {i} about ongoing events today"),
                )
            })
            .collect();
        let a = MeadBaseline::default().generate(&corpus, "q", 3, 2);
        let b = MeadBaseline::default().generate(&corpus, "q", 3, 2);
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.num_dates(), 3);
    }

    #[test]
    fn empty_input() {
        assert_eq!(
            MeadBaseline::default().generate(&[], "q", 3, 2).num_dates(),
            0
        );
    }

    #[test]
    fn generate_analyzed_matches_generate() {
        // Mixed corpus including mention-dated sentences, so the shared
        // analysis must be re-interned over the filtered subset.
        let mut corpus: Vec<DatedSentence> = (0..24)
            .map(|i| {
                sent(
                    i % 5,
                    i as usize,
                    &format!("daily report {i} covering the unfolding summit events"),
                )
            })
            .collect();
        for s in corpus.iter_mut().skip(1).step_by(3) {
            s.from_mention = true;
        }
        let analysis = CorpusAnalysis::build(&corpus, true);
        let direct = MeadBaseline::default().generate(&corpus, "q", 3, 2);
        let shared = MeadBaseline::default().generate_analyzed(&analysis, &corpus, "q", 3, 2);
        assert_eq!(direct.entries, shared.entries);
    }
}
