//! Competing timeline-summarization methods (§3.1.2 of the WILSON paper).
//!
//! Every method the paper *runs* (as opposed to quoting from prior work) is
//! implemented here against the shared [`tl_corpus::TimelineGenerator`]
//! interface:
//!
//! * [`random`] — the Random baseline (random dates, random sentences),
//! * [`mead`] — MEAD-style centroid multi-document summarization
//!   (Radev et al. 2004),
//! * [`chieu`] — Chieu & Lee 2004: date-local "interest/burstiness"
//!   sentence scoring,
//! * [`ets`] — ETS (Yan et al. 2011): iterative-substitution optimization
//!   of relevance / coverage / coherence / diversity,
//! * [`regression`] — the supervised Regression baseline (pointwise linear
//!   regression on shallow sentence features, trained on a held-out seed),
//! * [`submodular`] — the TILSE framework (Martschat & Markert 2018) in
//!   both variants, **ASMDS** and **TLSConstraints**: greedy maximization
//!   of a saturated-coverage + diversity objective over the full pairwise
//!   sentence-similarity structure. This is the state-of-the-art
//!   comparison system of Tables 7 and Figure 2 — deliberately `O((TN)²)`
//!   in the similarity construction, which is exactly the scalability wall
//!   the paper measures.
#![warn(missing_docs)]

pub mod chieu;
pub mod ets;
pub mod mead;
pub mod random;
pub mod regression;
pub mod submodular;

pub use chieu::ChieuBaseline;
pub use ets::EtsBaseline;
pub use mead::MeadBaseline;
pub use random::RandomBaseline;
pub use regression::RegressionBaseline;
pub use submodular::{SubmodularConfig, SubmodularVariant, TilseBaseline};
