//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches regenerate the paper's speed results:
//!
//! * `benches/scaling.rs` — **Figure 2**: generation time vs corpus size
//!   for WILSON and the TILSE submodular variants (quadratic vs
//!   near-linear),
//! * `benches/pipeline.rs` — **Table 7's runtime column**: seconds per
//!   timeline for every method, plus the parallel-vs-serial and
//!   post-processing ablations DESIGN.md calls out,
//! * `benches/components.rs` — substrate micro-benches (PageRank, BM25,
//!   TextRank, temporal tagging, ROUGE, affinity propagation) so
//!   regressions in any stage are attributable.
#![warn(missing_docs)]

use tl_corpus::{dated_sentences, generate, DatedSentence, SynthConfig};

/// A ready-to-summarize benchmark corpus: dated sentences + query + (T, N).
pub struct BenchCorpus {
    /// The dated-sentence corpus.
    pub sentences: Vec<DatedSentence>,
    /// Topic query.
    pub query: String,
    /// Number of timeline dates (ground-truth derived).
    pub t: usize,
    /// Sentences per date.
    pub n: usize,
}

/// Build a Timeline17-profile corpus at the given scale (topic 0).
pub fn timeline17_corpus(scale: f64) -> BenchCorpus {
    let ds = generate(&SynthConfig::timeline17().with_scale(scale));
    let topic = &ds.topics[0];
    let gt = &topic.timelines[0];
    BenchCorpus {
        sentences: dated_sentences(&topic.articles, None),
        query: topic.query.clone(),
        t: gt.num_dates(),
        n: gt.target_sentences_per_date(),
    }
}

/// Build a tiny-profile corpus at the given scale (topic 0) — used by the
/// scaling bench, where corpus size must actually grow with scale (the
/// Timeline17 profile's minimum-articles floor flattens small scales).
pub fn tiny_corpus(scale: f64) -> BenchCorpus {
    let ds = generate(&SynthConfig::tiny().with_scale(scale));
    let topic = &ds.topics[0];
    let gt = &topic.timelines[0];
    BenchCorpus {
        sentences: dated_sentences(&topic.articles, None),
        query: topic.query.clone(),
        t: gt.num_dates(),
        n: gt.target_sentences_per_date(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_ladder_grows() {
        let a = tiny_corpus(2.0);
        let b = tiny_corpus(4.0);
        assert!(b.sentences.len() > a.sentences.len() * 3 / 2);
    }

    #[test]
    fn fixture_is_nonempty() {
        let c = timeline17_corpus(0.01);
        assert!(!c.sentences.is_empty());
        assert!(c.t > 0 && c.n > 0);
        assert!(!c.query.is_empty());
    }
}
