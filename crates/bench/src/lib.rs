//! Shared fixtures and the wall-clock runner for the benchmarks.
//!
//! The benches regenerate the paper's speed results:
//!
//! * `benches/scaling.rs` — **Figure 2**: generation time vs corpus size
//!   for WILSON and the TILSE submodular variants (quadratic vs
//!   near-linear),
//! * `benches/pipeline.rs` — **Table 7's runtime column**: seconds per
//!   timeline for every method, plus the parallel-vs-serial and
//!   post-processing ablations DESIGN.md calls out,
//! * `benches/components.rs` — substrate micro-benches (PageRank, BM25,
//!   TextRank, temporal tagging, ROUGE, affinity propagation) so
//!   regressions in any stage are attributable.
//!
//! Benches are plain `#[test] #[ignore]` functions driven by [`bench`] (a
//! minimal warmup + N-iteration + median/p95 runner, the in-tree criterion
//! replacement). Run them with:
//!
//! ```text
//! cargo test -q -p tl-bench -- --ignored --nocapture
//! ```
#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;
use tl_corpus::{dated_sentences, generate, DatedSentence, SynthConfig};
use tl_support::json::{obj, Json};

/// Wall-clock statistics from one [`bench`] run, in seconds.
#[derive(Debug, Clone, Copy)]
pub struct BenchStats {
    /// Median iteration time.
    pub median: f64,
    /// 95th-percentile iteration time.
    pub p95: f64,
    /// Number of measured iterations.
    pub iters: usize,
}

/// Benchmark a closure: `warmup` unmeasured runs, then `iters` timed runs;
/// prints and returns median / p95 wall-clock seconds.
///
/// Keep the result observable inside `f` with `std::hint::black_box` so the
/// optimizer cannot delete the work.
pub fn bench_with(name: &str, warmup: usize, iters: usize, mut f: impl FnMut()) -> BenchStats {
    assert!(iters > 0, "need at least one measured iteration");
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<f64> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite durations"));
    let stats = BenchStats {
        median: times[times.len() / 2],
        p95: times[(times.len() * 95).div_ceil(100).saturating_sub(1)],
        iters,
    };
    println!(
        "bench {name}: median {:.3} ms, p95 {:.3} ms ({iters} iters)",
        stats.median * 1e3,
        stats.p95 * 1e3
    );
    stats
}

/// [`bench_with`] using the default sizing (2 warmup + 10 measured runs,
/// override with the `TL_BENCH_ITERS` environment variable).
pub fn bench(name: &str, f: impl FnMut()) -> BenchStats {
    let iters = std::env::var("TL_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    bench_with(name, 2, iters, f)
}

/// Schema tag of the `BENCH_*.json` reports.
pub const REPORT_SCHEMA: &str = "tl-bench/v1";

/// Serializes concurrent [`record`] calls within one test binary so
/// read-merge-write cycles on a report file never interleave.
static REPORT_LOCK: Mutex<()> = Mutex::new(());

/// The repository root (`crates/bench/../..`) — where the committed
/// `BENCH_*.json` baselines live.
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Where reports are written: `TL_BENCH_REPORT_DIR` when set (CI smoke runs
/// point this at a scratch directory so the committed baselines stay
/// untouched), otherwise the repository root.
pub fn report_dir() -> PathBuf {
    match std::env::var("TL_BENCH_REPORT_DIR") {
        Ok(d) if !d.is_empty() => PathBuf::from(d),
        _ => repo_root(),
    }
}

/// Merge `stats` into the report `dir/file` under the entry `name`.
///
/// The report is `{"schema": "tl-bench/v1", "benches": [{name, median_s,
/// p95_s, iters, threads}, ...]}` — `threads` is the global pool's worker
/// count when the entry was measured, so single-core and multicore numbers
/// are never compared blind. An existing entry with the same name is
/// replaced, others are preserved — each bench target updates only its own
/// rows. A missing, unparseable, or wrong-schema file is started fresh.
pub fn record_at(dir: &Path, file: &str, name: &str, stats: &BenchStats) -> PathBuf {
    let _guard = REPORT_LOCK.lock().unwrap();
    std::fs::create_dir_all(dir).expect("create report dir");
    let path = dir.join(file);
    let mut benches: Vec<Json> = match std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
    {
        Some(doc) if doc.get("schema").and_then(Json::as_str) == Some(REPORT_SCHEMA) => doc
            .get("benches")
            .and_then(Json::as_arr)
            .map(<[Json]>::to_vec)
            .unwrap_or_default(),
        _ => Vec::new(),
    };
    let entry = obj(vec![
        ("name", Json::Str(name.to_string())),
        ("median_s", Json::Num(stats.median)),
        ("p95_s", Json::Num(stats.p95)),
        ("iters", Json::Num(stats.iters as f64)),
        ("threads", Json::Num(tl_support::par::threads() as f64)),
    ]);
    let slot = benches
        .iter_mut()
        .find(|b| b.get("name").and_then(Json::as_str) == Some(name));
    match slot {
        Some(existing) => *existing = entry,
        None => benches.push(entry),
    }
    let doc = obj(vec![
        ("schema", Json::Str(REPORT_SCHEMA.to_string())),
        ("benches", Json::Arr(benches)),
    ]);
    let mut text = doc.to_string_pretty();
    text.push('\n');
    std::fs::write(&path, text).expect("write bench report");
    path
}

/// [`record_at`] into [`report_dir`].
pub fn record(file: &str, name: &str, stats: &BenchStats) -> PathBuf {
    record_at(&report_dir(), file, name, stats)
}

/// Run [`bench`] and persist the stats into the report `file`.
pub fn bench_reported(file: &str, name: &str, f: impl FnMut()) -> BenchStats {
    let stats = bench(name, f);
    record(file, name, &stats);
    stats
}

/// The committed baseline median for `name` in the repo-root report `file`
/// (ignores `TL_BENCH_REPORT_DIR` — this is always the checked-in value the
/// CI smoke gate compares fresh runs against).
pub fn baseline_median(file: &str, name: &str) -> Option<f64> {
    let text = std::fs::read_to_string(repo_root().join(file)).ok()?;
    let doc = Json::parse(&text).ok()?;
    if doc.get("schema").and_then(Json::as_str) != Some(REPORT_SCHEMA) {
        return None;
    }
    doc.get("benches")?
        .as_arr()?
        .iter()
        .find(|b| b.get("name").and_then(Json::as_str) == Some(name))?
        .get("median_s")?
        .as_f64()
}

/// A ready-to-summarize benchmark corpus: dated sentences + query + (T, N).
pub struct BenchCorpus {
    /// The dated-sentence corpus.
    pub sentences: Vec<DatedSentence>,
    /// Topic query.
    pub query: String,
    /// Number of timeline dates (ground-truth derived).
    pub t: usize,
    /// Sentences per date.
    pub n: usize,
}

/// Build a Timeline17-profile corpus at the given scale (topic 0).
pub fn timeline17_corpus(scale: f64) -> BenchCorpus {
    let ds = generate(&SynthConfig::timeline17().with_scale(scale));
    let topic = &ds.topics[0];
    let gt = &topic.timelines[0];
    BenchCorpus {
        sentences: dated_sentences(&topic.articles, None),
        query: topic.query.clone(),
        t: gt.num_dates(),
        n: gt.target_sentences_per_date(),
    }
}

/// Build a tiny-profile corpus at the given scale (topic 0) — used by the
/// scaling bench, where corpus size must actually grow with scale (the
/// Timeline17 profile's minimum-articles floor flattens small scales).
pub fn tiny_corpus(scale: f64) -> BenchCorpus {
    let ds = generate(&SynthConfig::tiny().with_scale(scale));
    let topic = &ds.topics[0];
    let gt = &topic.timelines[0];
    BenchCorpus {
        sentences: dated_sentences(&topic.articles, None),
        query: topic.query.clone(),
        t: gt.num_dates(),
        n: gt.target_sentences_per_date(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_ladder_grows() {
        let a = tiny_corpus(2.0);
        let b = tiny_corpus(4.0);
        assert!(b.sentences.len() > a.sentences.len() * 3 / 2);
    }

    #[test]
    fn bench_runner_reports_sane_stats() {
        let mut count = 0usize;
        let s = bench_with("noop", 1, 7, || count += 1);
        assert_eq!(count, 8); // warmup + measured
        assert_eq!(s.iters, 7);
        assert!(s.median >= 0.0 && s.p95 >= s.median);
    }

    #[test]
    fn fixture_is_nonempty() {
        let c = timeline17_corpus(0.01);
        assert!(!c.sentences.is_empty());
        assert!(c.t > 0 && c.n > 0);
        assert!(!c.query.is_empty());
    }

    #[test]
    fn report_merges_by_name() {
        let dir = std::env::temp_dir().join(format!("tl-bench-report-{}", std::process::id()));
        let stats = |median: f64| BenchStats {
            median,
            p95: median * 2.0,
            iters: 5,
        };
        record_at(&dir, "BENCH_test.json", "a", &stats(1.0));
        record_at(&dir, "BENCH_test.json", "b", &stats(2.0));
        // Same name again: replaced, not appended.
        let path = record_at(&dir, "BENCH_test.json", "a", &stats(3.0));

        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(REPORT_SCHEMA));
        let benches = doc.get("benches").and_then(Json::as_arr).unwrap();
        assert_eq!(benches.len(), 2);
        let median_of = |name: &str| {
            benches
                .iter()
                .find(|b| b.get("name").and_then(Json::as_str) == Some(name))
                .and_then(|b| b.get("median_s"))
                .and_then(Json::as_f64)
                .unwrap()
        };
        assert_eq!(median_of("a"), 3.0);
        assert_eq!(median_of("b"), 2.0);
        let iters: usize = benches[0]
            .get("iters")
            .and_then(Json::as_f64)
            .map(|x| x as usize)
            .unwrap();
        assert_eq!(iters, 5);
        let threads = benches[0].get("threads").and_then(Json::as_f64).unwrap();
        assert_eq!(threads as usize, tl_support::par::threads());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_survives_corrupt_file() {
        let dir = std::env::temp_dir().join(format!("tl-bench-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("BENCH_bad.json"), "not json {{{").unwrap();
        let stats = BenchStats {
            median: 1.0,
            p95: 1.0,
            iters: 1,
        };
        let path = record_at(&dir, "BENCH_bad.json", "x", &stats);
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("benches").and_then(Json::as_arr).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
