//! Shared fixtures and the wall-clock runner for the benchmarks.
//!
//! The benches regenerate the paper's speed results:
//!
//! * `benches/scaling.rs` — **Figure 2**: generation time vs corpus size
//!   for WILSON and the TILSE submodular variants (quadratic vs
//!   near-linear),
//! * `benches/pipeline.rs` — **Table 7's runtime column**: seconds per
//!   timeline for every method, plus the parallel-vs-serial and
//!   post-processing ablations DESIGN.md calls out,
//! * `benches/components.rs` — substrate micro-benches (PageRank, BM25,
//!   TextRank, temporal tagging, ROUGE, affinity propagation) so
//!   regressions in any stage are attributable.
//!
//! Benches are plain `#[test] #[ignore]` functions driven by [`bench`] (a
//! minimal warmup + N-iteration + median/p95 runner, the in-tree criterion
//! replacement). Run them with:
//!
//! ```text
//! cargo test -q -p tl-bench -- --ignored --nocapture
//! ```
#![warn(missing_docs)]

use std::time::Instant;
use tl_corpus::{dated_sentences, generate, DatedSentence, SynthConfig};

/// Wall-clock statistics from one [`bench`] run, in seconds.
#[derive(Debug, Clone, Copy)]
pub struct BenchStats {
    /// Median iteration time.
    pub median: f64,
    /// 95th-percentile iteration time.
    pub p95: f64,
    /// Number of measured iterations.
    pub iters: usize,
}

/// Benchmark a closure: `warmup` unmeasured runs, then `iters` timed runs;
/// prints and returns median / p95 wall-clock seconds.
///
/// Keep the result observable inside `f` with `std::hint::black_box` so the
/// optimizer cannot delete the work.
pub fn bench_with(name: &str, warmup: usize, iters: usize, mut f: impl FnMut()) -> BenchStats {
    assert!(iters > 0, "need at least one measured iteration");
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<f64> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite durations"));
    let stats = BenchStats {
        median: times[times.len() / 2],
        p95: times[(times.len() * 95).div_ceil(100).saturating_sub(1)],
        iters,
    };
    println!(
        "bench {name}: median {:.3} ms, p95 {:.3} ms ({iters} iters)",
        stats.median * 1e3,
        stats.p95 * 1e3
    );
    stats
}

/// [`bench_with`] using the default sizing (2 warmup + 10 measured runs,
/// override with the `TL_BENCH_ITERS` environment variable).
pub fn bench(name: &str, f: impl FnMut()) -> BenchStats {
    let iters = std::env::var("TL_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    bench_with(name, 2, iters, f)
}

/// A ready-to-summarize benchmark corpus: dated sentences + query + (T, N).
pub struct BenchCorpus {
    /// The dated-sentence corpus.
    pub sentences: Vec<DatedSentence>,
    /// Topic query.
    pub query: String,
    /// Number of timeline dates (ground-truth derived).
    pub t: usize,
    /// Sentences per date.
    pub n: usize,
}

/// Build a Timeline17-profile corpus at the given scale (topic 0).
pub fn timeline17_corpus(scale: f64) -> BenchCorpus {
    let ds = generate(&SynthConfig::timeline17().with_scale(scale));
    let topic = &ds.topics[0];
    let gt = &topic.timelines[0];
    BenchCorpus {
        sentences: dated_sentences(&topic.articles, None),
        query: topic.query.clone(),
        t: gt.num_dates(),
        n: gt.target_sentences_per_date(),
    }
}

/// Build a tiny-profile corpus at the given scale (topic 0) — used by the
/// scaling bench, where corpus size must actually grow with scale (the
/// Timeline17 profile's minimum-articles floor flattens small scales).
pub fn tiny_corpus(scale: f64) -> BenchCorpus {
    let ds = generate(&SynthConfig::tiny().with_scale(scale));
    let topic = &ds.topics[0];
    let gt = &topic.timelines[0];
    BenchCorpus {
        sentences: dated_sentences(&topic.articles, None),
        query: topic.query.clone(),
        t: gt.num_dates(),
        n: gt.target_sentences_per_date(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_ladder_grows() {
        let a = tiny_corpus(2.0);
        let b = tiny_corpus(4.0);
        assert!(b.sentences.len() > a.sentences.len() * 3 / 2);
    }

    #[test]
    fn bench_runner_reports_sane_stats() {
        let mut count = 0usize;
        let s = bench_with("noop", 1, 7, || count += 1);
        assert_eq!(count, 8); // warmup + measured
        assert_eq!(s.iters, 7);
        assert!(s.median >= 0.0 && s.p95 >= s.median);
    }

    #[test]
    fn fixture_is_nonempty() {
        let c = timeline17_corpus(0.01);
        assert!(!c.sentences.is_empty());
        assert!(c.t > 0 && c.n > 0);
        assert!(!c.query.is_empty());
    }
}
