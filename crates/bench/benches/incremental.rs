//! Steady-state incremental maintenance benchmark (the headline number for
//! the incremental tentpole): one fresh article is ingested into an
//! already-warm system and the updated timeline is requested, so the
//! memoized [`tl_wilson`] session advances by exactly that delta — versus
//! the identical tick against a system with incremental maintenance
//! disabled, which rebuilds the whole timeline from the fetched rows.
//!
//! Entries persisted to `BENCH_incremental.json`:
//!
//! * `incremental/steady_state_1_article_tick` — ingest one article +
//!   fresh timeline with the default (incremental, bit-exact) config,
//! * `incremental/full_rebuild_1_article_tick` — the same tick with
//!   [`IncrementalConfig::disabled`] (the pre-tentpole behavior: every
//!   epoch bump recomputes the timeline from scratch),
//! * `incremental/meta_corpus_sentences` — warm-corpus size, pinning that
//!   the run really is at the 10k-sentence tier,
//! * `incremental/meta_speedup_x` — full-rebuild median over steady-state
//!   median.
//!
//! With `TL_BENCH_ENFORCE=1` the run fails unless the speedup stays above
//! a noise-tolerant 4x floor (the committed headline is >= 5x) and both
//! latency entries stay within 2x of their committed
//! `BENCH_incremental.json` baselines.
//!
//! Run with `cargo test -q -p tl-bench --test incremental -- --ignored
//! --nocapture`.

use std::hint::black_box;
use tl_bench::{baseline_median, bench_with, record, BenchStats};
use tl_corpus::{generate, Article, SynthConfig};
use tl_wilson::{IncrementalConfig, RealTimeSystem, TimelineQuery, WilsonConfig};

fn iters() -> usize {
    std::env::var("TL_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20)
}

fn enforce() -> bool {
    std::env::var("TL_BENCH_ENFORCE").as_deref() == Ok("1")
}

fn gate_baseline(name: &str, fresh_median: f64, regressions: &mut Vec<String>) {
    if !enforce() {
        return;
    }
    let baseline = baseline_median("BENCH_incremental.json", name)
        .unwrap_or_else(|| panic!("committed BENCH_incremental.json must contain {name}"));
    if fresh_median > 2.0 * baseline {
        regressions.push(format!(
            "{name}: median {:.1} ms > 2x baseline {:.1} ms",
            fresh_median * 1e3,
            baseline * 1e3
        ));
    }
}

struct Fixture {
    /// Warm corpus, ingested before the measured loop starts.
    base: Vec<Article>,
    /// Tick article pool, cycled by the measured loop (warmup included).
    ticks: Vec<Article>,
    query: TimelineQuery,
    corpus_sentences: usize,
}

fn fixture() -> Fixture {
    let ds = generate(&SynthConfig::timeline17().with_scale(0.3));
    let topic = &ds.topics[0];
    // Hold back a fixed pool of same-topic articles for the ticks (fixed so
    // the warm-corpus size does not depend on the iteration count); the
    // measured loop cycles through the pool. A re-ingested article is
    // assigned fresh sentence ids, so even a cycled tick grows the corpus
    // and advances the session by a genuine delta inside the query window.
    let need = 12;
    assert!(
        topic.articles.len() > need + 10,
        "topic too small: {} articles for {need} ticks",
        topic.articles.len()
    );
    let (base, ticks) = topic.articles.split_at(topic.articles.len() - need);
    let corpus_sentences: usize = base.iter().map(|a| a.sentences.len()).sum();
    assert!(
        corpus_sentences >= 10_000,
        "warm corpus below the 10k-sentence tier: {corpus_sentences}"
    );
    let cfg = SynthConfig::timeline17();
    Fixture {
        base: base.to_vec(),
        ticks: ticks.to_vec(),
        query: TimelineQuery {
            keywords: topic.query.clone(),
            window: (
                cfg.start_date,
                cfg.start_date.plus_days(cfg.duration_days as i32),
            ),
            num_dates: 10,
            sents_per_date: 2,
            // Above the corpus' true match count (~4.5k of the 13k indexed
            // rows), so the fetch is *complete* and the session can advance
            // by delta scans instead of re-searching — and the full-rebuild
            // baseline honestly recomputes over every matching sentence.
            fetch_limit: 6_000,
        },
        corpus_sentences,
    }
}

/// Warm a system on the base corpus, establish its session with one query,
/// then measure repeated (ingest one article, query the timeline) ticks.
/// Both variants run the identical tick sequence.
fn steady_state(config: WilsonConfig, fx: &Fixture, name: &str) -> (BenchStats, RealTimeSystem) {
    let sys = RealTimeSystem::new(config);
    sys.ingest_all(&fx.base).expect("warm ingest");
    black_box(sys.timeline(&fx.query).expect("warm query"));
    let mut next = 0usize;
    // 2 unmeasured warmup ticks, then the measured ones; the default
    // iteration count is higher than `bench`'s so the median sits on the
    // plateau of cheap ticks rather than on a day-recompute spike.
    let stats = bench_with(name, 2, iters(), || {
        let article = &fx.ticks[next % fx.ticks.len()];
        next += 1;
        sys.ingest(article).expect("tick ingest");
        black_box(sys.timeline(&fx.query).expect("tick query"));
    });
    (stats, sys)
}

#[test]
#[ignore = "benchmark"]
fn bench_incremental_steady_state() {
    let fx = fixture();
    let mut regressions = Vec::new();
    record(
        "BENCH_incremental.json",
        "incremental/meta_corpus_sentences",
        &BenchStats {
            median: fx.corpus_sentences as f64,
            p95: fx.corpus_sentences as f64,
            iters: 1,
        },
    );

    let (full, full_sys) = steady_state(
        WilsonConfig::default().with_incremental(IncrementalConfig::disabled()),
        &fx,
        "incremental/full_rebuild_1_article_tick",
    );
    record(
        "BENCH_incremental.json",
        "incremental/full_rebuild_1_article_tick",
        &full,
    );
    gate_baseline(
        "incremental/full_rebuild_1_article_tick",
        full.median,
        &mut regressions,
    );
    // The disabled variant must really have rebuilt from scratch each tick.
    let full_stats = full_sys.session_stats(&fx.query).expect("session stats");
    assert_eq!(
        full_stats.refreshes, 0,
        "disabled config ran incremental refreshes"
    );

    let (inc, inc_sys) = steady_state(
        WilsonConfig::default(),
        &fx,
        "incremental/steady_state_1_article_tick",
    );
    record(
        "BENCH_incremental.json",
        "incremental/steady_state_1_article_tick",
        &inc,
    );
    gate_baseline(
        "incremental/steady_state_1_article_tick",
        inc.median,
        &mut regressions,
    );
    // The incremental variant must really have advanced by deltas: one
    // refresh for the warm query plus one per tick.
    let inc_stats = inc_sys.session_stats(&fx.query).expect("session stats");
    assert!(
        inc_stats.refreshes >= iters() as u64,
        "expected per-tick incremental refreshes, saw {}",
        inc_stats.refreshes
    );

    let speedup = full.median / inc.median;
    record(
        "BENCH_incremental.json",
        "incremental/meta_speedup_x",
        &BenchStats {
            median: speedup,
            p95: speedup,
            iters: inc.iters,
        },
    );
    println!(
        "incremental steady-state tick: {:.2} ms vs full rebuild {:.2} ms ({speedup:.1}x, \
         {} warm sentences)",
        inc.median * 1e3,
        full.median * 1e3,
        fx.corpus_sentences
    );
    if enforce() {
        // Noise-tolerant floor below the >= 5x committed headline: the tick
        // distribution is bimodal (cheap cache-reuse ticks vs day-recompute
        // spikes), so the median moves run to run on a loaded box, while a
        // real regression — the incremental path degrading to rebuilds —
        // reads as ~1x. The 2x-of-baseline gates bound absolute latency.
        assert!(
            speedup >= 4.0,
            "steady-state tick only {speedup:.2}x faster than full rebuild (need >= 4x)"
        );
        assert!(regressions.is_empty(), "regressions:\n{}", regressions.join("\n"));
    }
}
