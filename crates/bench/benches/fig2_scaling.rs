//! **Figure 2** as a wall-clock bench: generation time vs corpus size for
//! WILSON and the TILSE submodular framework. The submodular methods grow
//! quadratically with the sentence count; WILSON is near-linear.
//!
//! Run with `cargo test -q -p tl-bench -- --ignored --nocapture`.

use std::hint::black_box;
use tl_baselines::{SubmodularConfig, TilseBaseline};
use tl_bench::{bench_reported, tiny_corpus};
use tl_corpus::TimelineGenerator;
use tl_wilson::{Wilson, WilsonConfig};

#[test]
#[ignore = "benchmark"]
fn bench_fig2_scaling() {
    // Tiny-profile ladder: sizes that double (the Timeline17 profile's
    // minimum-articles floor would flatten small scales to one size).
    // The TILSE variants run the faithful quadratic path — this bench is
    // about the cost *profile*, which the all-pairs kernel would flatten
    // (see EXPERIMENTS.md, Figure 2 fidelity note).
    for &scale in &[2.0f64, 4.0, 8.0] {
        let cx = tiny_corpus(scale);
        let size = cx.sentences.len();
        let wilson = Wilson::new(WilsonConfig::default());
        bench_reported("BENCH_pipeline.json", &format!("fig2_scaling/wilson/{size}"), || {
            black_box(wilson.generate(&cx.sentences, &cx.query, cx.t, cx.n));
        });
        let asmds = TilseBaseline::new(SubmodularConfig::asmds().with_faithful_quadratic(true));
        bench_reported("BENCH_pipeline.json", &format!("fig2_scaling/asmds/{size}"), || {
            black_box(asmds.generate(&cx.sentences, &cx.query, cx.t, cx.n));
        });
        let tlsc =
            TilseBaseline::new(SubmodularConfig::tls_constraints().with_faithful_quadratic(true));
        bench_reported("BENCH_pipeline.json", &format!("fig2_scaling/tls_constraints/{size}"), || {
            black_box(tlsc.generate(&cx.sentences, &cx.query, cx.t, cx.n));
        });
    }
}
