//! Multi-threaded closed-loop query benchmark for the sharded real-time
//! engine (§5 under concurrent load).
//!
//! K client threads each issue a stream of cache-busting timeline queries
//! back-to-back against one shared [`RealTimeSystem`]; every query's
//! latency is recorded and the merged sample yields p50/p95 per thread
//! count, persisted to `BENCH_realtime.json`:
//!
//! * `realtime/closed_loop_{k}_threads` — per-query latency percentiles
//!   (median_s = p50, p95_s = p95) across all clients,
//! * `realtime/closed_loop_{k}_threads_wall` — wall-clock seconds for the
//!   whole fixed batch (same total query count at every k, so scaling past
//!   one thread shows up directly as a smaller wall time),
//! * `realtime/mixed_ingest_query_wall` — the same closed loop with a
//!   writer thread ingesting concurrently (snapshot reads: queries must
//!   not serialize behind inserts),
//! * `realtime/meta_available_parallelism` — the host's core count, so a
//!   committed baseline is interpretable: on a single-core container the
//!   closed-loop ceiling is *flat* wall time (no speedup is physically
//!   possible), while multi-core hosts should see the k-thread batch wall
//!   drop below the 1-thread one.
//!
//! Run with `cargo test -q -p tl-bench --test realtime -- --ignored --nocapture`.

use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use tl_bench::{record, BenchStats};
use tl_corpus::{generate, SynthConfig};
use tl_ir::ShardedSearchConfig;
use tl_wilson::{RealTimeSystem, TimelineQuery, WilsonConfig};

const CLIENT_COUNTS: [usize; 3] = [1, 4, 8];
/// Total queries per round — constant across thread counts so wall times
/// are directly comparable.
const BATCH: usize = 48;

fn rounds() -> usize {
    std::env::var("TL_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

struct Fixture {
    system: RealTimeSystem,
    query: TimelineQuery,
}

fn fixture() -> Fixture {
    let dataset = generate(&SynthConfig::timeline17().with_scale(0.05));
    // Client threads are the measured parallelism axis: keep WILSON's
    // internal fan-out off so k clients vs 1 client is apples-to-apples.
    let config = WilsonConfig::default()
        .with_parallel(false)
        .with_analysis_parallel(false)
        .with_search(ShardedSearchConfig::default().with_shards(4));
    let system = RealTimeSystem::new(config);
    for topic in &dataset.topics {
        system.ingest_all(&topic.articles).unwrap();
    }
    let cfg = SynthConfig::timeline17();
    let query = TimelineQuery {
        keywords: dataset.topics[0].query.clone(),
        window: (
            cfg.start_date,
            cfg.start_date.plus_days(cfg.duration_days as i32),
        ),
        num_dates: 10,
        sents_per_date: 2,
        fetch_limit: 600,
    };
    Fixture { system, query }
}

/// Run one closed-loop round: `clients` threads issue `BATCH / clients`
/// queries each, every query with a globally unique `fetch_limit` bump so
/// the epoch memo never serves it (identical work, distinct cache key).
/// Returns (per-query latencies, round wall seconds).
fn closed_loop_round(fx: &Fixture, clients: usize, bump: &AtomicUsize) -> (Vec<f64>, f64) {
    let per_client = BATCH / clients;
    let start = Instant::now();
    let latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::with_capacity(per_client);
                    for _ in 0..per_client {
                        let unique = bump.fetch_add(1, Ordering::Relaxed);
                        let q = TimelineQuery {
                            fetch_limit: fx.query.fetch_limit + unique,
                            ..fx.query.clone()
                        };
                        let t0 = Instant::now();
                        black_box(fx.system.timeline(&q).unwrap());
                        mine.push(t0.elapsed().as_secs_f64());
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client panicked"))
            .collect()
    });
    (latencies, start.elapsed().as_secs_f64())
}

fn percentile(sorted: &[f64], p: usize) -> f64 {
    sorted[(sorted.len() * p).div_ceil(100).saturating_sub(1)]
}

#[test]
#[ignore = "benchmark"]
fn bench_closed_loop_clients() {
    let fx = fixture();
    let bump = AtomicUsize::new(1);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    record(
        "BENCH_realtime.json",
        "realtime/meta_available_parallelism",
        &BenchStats {
            median: cores as f64,
            p95: cores as f64,
            iters: 1,
        },
    );
    for clients in CLIENT_COUNTS {
        // Warmup round, then measured rounds.
        closed_loop_round(&fx, clients, &bump);
        let mut latencies: Vec<f64> = Vec::new();
        let mut walls: Vec<f64> = Vec::new();
        for _ in 0..rounds() {
            let (lat, wall) = closed_loop_round(&fx, clients, &bump);
            latencies.extend(lat);
            walls.push(wall);
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        walls.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let lat_stats = BenchStats {
            median: percentile(&latencies, 50),
            p95: percentile(&latencies, 95),
            iters: latencies.len(),
        };
        let wall_stats = BenchStats {
            median: percentile(&walls, 50),
            p95: percentile(&walls, 95),
            iters: walls.len(),
        };
        println!(
            "bench realtime/closed_loop_{clients}_threads: p50 {:.3} ms, p95 {:.3} ms \
             ({} queries); batch of {BATCH} in {:.3} ms",
            lat_stats.median * 1e3,
            lat_stats.p95 * 1e3,
            lat_stats.iters,
            wall_stats.median * 1e3,
        );
        record(
            "BENCH_realtime.json",
            &format!("realtime/closed_loop_{clients}_threads"),
            &lat_stats,
        );
        record(
            "BENCH_realtime.json",
            &format!("realtime/closed_loop_{clients}_threads_wall"),
            &wall_stats,
        );
    }
}

#[test]
#[ignore = "benchmark"]
fn bench_queries_during_ingestion() {
    // Snapshot reads under write pressure: 4 clients query while a writer
    // ingests fresh articles in micro-batches (one publish per batch — the
    // realistic §5 cadence at this index size, since a publish clones the
    // touched index state). With the old engine reads serialized behind
    // the writer; with snapshot publishing the measured *query batch* wall
    // should stay in the same regime as the read-only loop.
    let fx = fixture();
    let extra = generate(&SynthConfig::timeline17().with_scale(0.01));
    let articles = &extra.topics[0].articles;
    let bump = AtomicUsize::new(1_000_000);
    closed_loop_round(&fx, 4, &bump); // warmup
    let mut walls: Vec<f64> = Vec::new();
    for round in 0..rounds() {
        // A different chunk each round so every round really publishes.
        let chunk_size = (articles.len() / rounds()).max(1);
        let chunk = &articles[(round * chunk_size) % articles.len()..][..chunk_size];
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for batch in chunk.chunks(4) {
                    fx.system.ingest_all(batch).unwrap();
                }
            });
            let (_, wall) = closed_loop_round(&fx, 4, &bump);
            walls.push(wall);
        });
    }
    walls.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let stats = BenchStats {
        median: percentile(&walls, 50),
        p95: percentile(&walls, 95),
        iters: walls.len(),
    };
    println!(
        "bench realtime/mixed_ingest_query_wall: median {:.3} ms, p95 {:.3} ms",
        stats.median * 1e3,
        stats.p95 * 1e3
    );
    record("BENCH_realtime.json", "realtime/mixed_ingest_query_wall", &stats);
}
