//! Replication cost: what does WAL shipping charge and how fast does the
//! cluster move?
//!
//! * `replication/ship_latency_1` — publish-to-visible latency for a single
//!   record: the primary inserts + publishes, one follower `pull` makes the
//!   new epoch servable,
//! * `replication/catch_up_1k` / `replication/catch_up_10k` — wall time for
//!   a *fresh* follower to join a primary holding that many durable records
//!   and reach its epoch (the 10k corpus crosses the default snapshot
//!   cadence, so the join is a snapshot bulk-apply + WAL tail; the 1k-record
//!   join uses a plain WAL-only primary and measures pure tailing),
//! * `replication/failover_to_first_serve` — primary death to first served
//!   read on the elected survivor: elect over the ballots, promote, search.
//!
//! Results go to `BENCH_replication.json`; with `TL_BENCH_ENFORCE=1` each
//! fresh median must stay within 2× of its committed baseline.
//!
//! Run with `cargo test -q -p tl-bench --test replication -- --ignored --nocapture`.

use std::hint::black_box;
use std::sync::Arc;
use tl_bench::{baseline_median, bench, record, timeline17_corpus};
use tl_corpus::DatedSentence;
use tl_ir::{
    elect, DurabilityConfig, DurableEngine, Follower, SearchQuery, ShardedSearchConfig,
};
use tl_support::storage::MemStorage;

fn corpus(n: usize) -> Vec<DatedSentence> {
    let base = timeline17_corpus(0.05).sentences;
    assert!(!base.is_empty());
    (0..n).map(|i| base[i % base.len()].clone()).collect()
}

fn enforce() -> bool {
    std::env::var("TL_BENCH_ENFORCE").as_deref() == Ok("1")
}

fn gate_baseline(name: &str, fresh_median: f64, regressions: &mut Vec<String>) {
    if !enforce() {
        return;
    }
    let baseline = baseline_median("BENCH_replication.json", name)
        .unwrap_or_else(|| panic!("committed BENCH_replication.json must contain {name}"));
    if fresh_median > 2.0 * baseline {
        regressions.push(format!(
            "{name}: median {:.1} ms > 2x baseline {:.1} ms",
            fresh_median * 1e3,
            baseline * 1e3
        ));
    }
}

fn primary_with(docs: &[DatedSentence], config: DurabilityConfig) -> (Arc<MemStorage>, DurableEngine) {
    let pmem = Arc::new(MemStorage::new());
    let primary = DurableEngine::open(pmem.clone(), ShardedSearchConfig::default(), config)
        .expect("open primary");
    for ds in docs {
        primary.insert(ds.date, ds.pub_date, &ds.text).expect("primary insert");
    }
    primary.publish().expect("primary publish");
    (pmem, primary)
}

fn join_follower(id: &str, pmem: Arc<MemStorage>) -> Follower {
    Follower::open(
        id,
        "p0",
        Arc::new(MemStorage::new()),
        pmem,
        ShardedSearchConfig::default(),
        DurabilityConfig::default(),
    )
    .expect("open follower")
}

#[test]
#[ignore = "benchmark"]
fn bench_ship_latency() {
    let docs = corpus(200);
    let mut regressions = Vec::new();
    let (pmem, primary) = primary_with(&docs[..100], DurabilityConfig::default().with_snapshot_every(0));
    let follower = join_follower("f1", pmem);
    follower.pull().expect("initial catch-up");
    assert_eq!(follower.epoch(), primary.epoch());

    // Publish-to-visible for one fresh record per iteration: the cost a
    // bounded-staleness read pays to see the newest acked epoch.
    let mut next = 100usize;
    let stats = bench("replication/ship_latency_1", || {
        let ds = &docs[next % docs.len()];
        next += 1;
        primary.insert(ds.date, ds.pub_date, &ds.text).expect("insert");
        primary.publish().expect("publish");
        follower.pull().expect("ship");
        assert_eq!(follower.epoch(), primary.epoch());
        black_box(follower.epoch());
    });
    record("BENCH_replication.json", "replication/ship_latency_1", &stats);
    gate_baseline("replication/ship_latency_1", stats.median, &mut regressions);
    assert!(regressions.is_empty(), "ship latency regressions:\n{}", regressions.join("\n"));
}

#[test]
#[ignore = "benchmark"]
fn bench_catch_up() {
    let mut regressions = Vec::new();
    for &n in &[1_000usize, 10_000] {
        let docs = corpus(n);
        // Default cadence: the 10k primary has compacted into a snapshot,
        // so the fresh join is a bulk apply; the 1k primary is WAL-only.
        let config = if n >= 10_000 {
            DurabilityConfig::default()
        } else {
            DurabilityConfig::default().with_snapshot_every(0)
        };
        let (pmem, primary) = primary_with(&docs, config);
        let name = format!("replication/catch_up_{}k", n / 1_000);
        let stats = bench(&name, || {
            let follower = join_follower("f1", pmem.clone());
            follower.pull().expect("catch-up");
            assert_eq!(follower.epoch(), primary.epoch());
            black_box(follower.len());
        });
        record("BENCH_replication.json", &name, &stats);
        gate_baseline(&name, stats.median, &mut regressions);
    }
    assert!(regressions.is_empty(), "catch-up regressions:\n{}", regressions.join("\n"));
}

#[test]
#[ignore = "benchmark"]
fn bench_failover_to_first_serve() {
    let docs = corpus(1_000);
    let mut regressions = Vec::new();
    let (pmem, primary) = primary_with(&docs, DurabilityConfig::default().with_snapshot_every(0));
    let probe = SearchQuery {
        keywords: docs[0].text.split_whitespace().take(2).collect::<Vec<_>>().join(" "),
        range: None,
        limit: 10,
    };
    let epoch = primary.epoch();
    drop(primary);

    // Two caught-up replicas; per iteration the cluster runs a full
    // failover: ballots, election, promotion, first served read. Promotion
    // is idempotent, so repeated iterations measure the same path.
    let f1 = join_follower("f1", pmem.clone());
    let f2 = join_follower("f2", pmem);
    f1.pull().expect("f1 catch-up");
    f2.pull().expect("f2 catch-up");
    assert_eq!(f1.epoch(), epoch);
    let stats = bench("replication/failover_to_first_serve", || {
        let ballots = [f1.state(), f2.state()];
        let winner_id = elect(&ballots).expect("candidates").id.clone();
        let winner = if winner_id == "f1" { &f1 } else { &f2 };
        winner.promote().expect("promote");
        let hits = winner.search(&probe);
        black_box(hits.len());
    });
    record(
        "BENCH_replication.json",
        "replication/failover_to_first_serve",
        &stats,
    );
    gate_baseline("replication/failover_to_first_serve", stats.median, &mut regressions);
    assert!(regressions.is_empty(), "failover regressions:\n{}", regressions.join("\n"));
}
