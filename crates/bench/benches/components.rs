//! Substrate micro-benchmarks: every stage of the WILSON pipeline in
//! isolation, so a regression in any component is attributable.
//!
//! Run with `cargo test -q -p tl-bench -- --ignored --nocapture`.

use std::hint::black_box;
use tl_bench::{bench_reported, timeline17_corpus};
use tl_embed::{affinity_propagation, AffinityPropagationConfig, SentenceEmbedder};
use tl_graph::{pagerank, DiGraph, PageRankConfig};
use tl_ir::{Bm25Params, Bm25Scorer};
use tl_nlp::{allpairs_cosine, pairwise_reference, AnalysisOptions, Analyzer, SparseVector, TfIdfModel};
use tl_rouge::RougeScorer;
use tl_temporal::{Date, TemporalTagger};

/// Dispatch-overhead microbench for the work-stealing pool: `par_map` on
/// the spawn-once pool vs the pre-pool `scoped_map` (one OS thread spawn
/// per chunk, per call), at a fixed chunk count of 4 so both sides schedule
/// identical work. Small batches isolate pure dispatch cost; the large
/// batch shows it amortized.
#[test]
#[ignore = "benchmark"]
fn bench_pool() {
    use tl_support::par::{par_map_threads, scoped_map};
    use tl_support::rng::splitmix64;
    let churn = |&seed: &u64| {
        let mut state = seed;
        let mut acc = 0u64;
        for _ in 0..32 {
            acc ^= splitmix64(&mut state);
        }
        acc
    };
    tl_support::pool::warm_pool();
    for n in [64usize, 4096] {
        let xs: Vec<u64> = (0..n as u64).collect();
        bench_reported(
            "BENCH_components.json",
            &format!("pool/par_map_c4_n{n}"),
            || {
                black_box(par_map_threads(&xs, 4, churn));
            },
        );
        bench_reported(
            "BENCH_components.json",
            &format!("pool/scoped_spawn_c4_n{n}"),
            || {
                black_box(scoped_map(&xs, 4, churn));
            },
        );
    }
}

#[test]
#[ignore = "benchmark"]
fn bench_pagerank() {
    for &n in &[100usize, 400, 1600] {
        // Ring + chords: sparse but connected.
        let mut g = DiGraph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n, 1.0);
            g.add_edge(i, (i * 7 + 3) % n, 0.5);
        }
        bench_reported("BENCH_components.json", &format!("pagerank/{n}"), || {
            black_box(pagerank(&g, &PageRankConfig::default()));
        });
    }
}

#[test]
#[ignore = "benchmark"]
fn bench_analysis_and_tagging() {
    let corpus = timeline17_corpus(0.02);
    let texts: Vec<&str> = corpus
        .sentences
        .iter()
        .take(2000)
        .map(|s| s.text.as_str())
        .collect();
    bench_reported("BENCH_components.json", "analyze_2000_sentences", || {
        let mut a = Analyzer::new(AnalysisOptions::retrieval());
        for t in &texts {
            black_box(a.analyze(t));
        }
    });
    let dct = Date::from_ymd(2011, 6, 1).expect("valid");
    let tagger = TemporalTagger::new();
    bench_reported("BENCH_components.json", "tag_2000_sentences", || {
        for t in &texts {
            black_box(tagger.tag(t, dct));
        }
    });
}

#[test]
#[ignore = "benchmark"]
fn bench_bm25() {
    let corpus = timeline17_corpus(0.02);
    let mut analyzer = Analyzer::new(AnalysisOptions::retrieval());
    let docs: Vec<Vec<u32>> = corpus
        .sentences
        .iter()
        .take(1000)
        .map(|s| analyzer.analyze(&s.text))
        .collect();
    let scorer = Bm25Scorer::fit(docs.iter().map(Vec::as_slice), Bm25Params::default());
    let query = analyzer.analyze_frozen(&corpus.query);
    bench_reported("BENCH_components.json", "bm25_score_1000_docs", || {
        let mut acc = 0.0;
        for d in &docs {
            acc += scorer.score(&query, d);
        }
        black_box(acc);
    });
}

#[test]
#[ignore = "benchmark"]
fn bench_rouge() {
    let corpus = timeline17_corpus(0.02);
    let sys: String = corpus
        .sentences
        .iter()
        .take(80)
        .map(|s| s.text.as_str())
        .collect::<Vec<_>>()
        .join(" ");
    let reference: String = corpus
        .sentences
        .iter()
        .skip(80)
        .take(80)
        .map(|s| s.text.as_str())
        .collect::<Vec<_>>()
        .join(" ");
    bench_reported("BENCH_components.json", "rouge2_80_sentences", || {
        let mut r = RougeScorer::new();
        black_box(r.rouge_2(&sys, &reference));
    });
    bench_reported("BENCH_components.json", "rouge_s_star_80_sentences", || {
        let mut r = RougeScorer::new();
        black_box(r.rouge_s_star(&sys, &reference));
    });
}

#[test]
#[ignore = "benchmark"]
fn bench_affinity() {
    let corpus = timeline17_corpus(0.1);
    let mut embedder = SentenceEmbedder::new(256);
    for &n in &[120usize, 500, 1000] {
        let vectors: Vec<Vec<f64>> = corpus
            .sentences
            .iter()
            .take(n)
            .map(|s| embedder.embed(&s.text))
            .collect();
        assert_eq!(vectors.len(), n, "corpus too small for {n}-point bench");
        let sim = tl_embed::cosine_matrix(&vectors, true);
        bench_reported(
            "BENCH_components.json",
            &format!("affinity_propagation_{n}"),
            || {
                black_box(affinity_propagation(
                    &sim,
                    &AffinityPropagationConfig::default(),
                ));
            },
        );
    }
}

/// The all-pairs cosine kernel against its quadratic reference, on the
/// TF-IDF unit vectors the TILSE baselines actually feed it (threshold 0.0
/// stores every positive pair — the worst case for the sparse sweep).
#[test]
#[ignore = "benchmark"]
fn bench_allpairs_kernel() {
    let corpus = timeline17_corpus(0.1);
    for &n in &[1000usize, 4000] {
        let mut analyzer = Analyzer::new(AnalysisOptions::retrieval());
        let tokens: Vec<Vec<u32>> = corpus
            .sentences
            .iter()
            .take(n)
            .map(|s| analyzer.analyze(&s.text))
            .collect();
        assert_eq!(tokens.len(), n, "corpus too small for {n}-sentence bench");
        let tfidf = TfIdfModel::fit(tokens.iter().map(Vec::as_slice));
        let vectors: Vec<SparseVector> = tokens.iter().map(|t| tfidf.unit_vector(t)).collect();
        bench_reported(
            "BENCH_components.json",
            &format!("allpairs/pairwise_{n}"),
            || {
                black_box(pairwise_reference(&vectors, 0.0));
            },
        );
        bench_reported(
            "BENCH_components.json",
            &format!("allpairs/kernel_serial_{n}"),
            || {
                black_box(allpairs_cosine(&vectors, 0.0, false));
            },
        );
        bench_reported(
            "BENCH_components.json",
            &format!("allpairs/kernel_parallel_{n}"),
            || {
                black_box(allpairs_cosine(&vectors, 0.0, true));
            },
        );
    }
}
