//! Substrate micro-benchmarks: every stage of the WILSON pipeline in
//! isolation, so a regression in any component is attributable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tl_bench::timeline17_corpus;
use tl_embed::{affinity_propagation, AffinityPropagationConfig, SentenceEmbedder};
use tl_graph::{pagerank, DiGraph, PageRankConfig};
use tl_ir::{Bm25Params, Bm25Scorer};
use tl_nlp::{AnalysisOptions, Analyzer};
use tl_rouge::RougeScorer;
use tl_temporal::{Date, TemporalTagger};

fn bench_pagerank(c: &mut Criterion) {
    let mut group = c.benchmark_group("pagerank");
    for &n in &[100usize, 400, 1600] {
        // Ring + chords: sparse but connected.
        let mut g = DiGraph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n, 1.0);
            g.add_edge(i, (i * 7 + 3) % n, 0.5);
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(pagerank(g, &PageRankConfig::default())));
        });
    }
    group.finish();
}

fn bench_analysis_and_tagging(c: &mut Criterion) {
    let corpus = timeline17_corpus(0.02);
    let texts: Vec<&str> = corpus
        .sentences
        .iter()
        .take(2000)
        .map(|s| s.text.as_str())
        .collect();
    c.bench_function("analyze_2000_sentences", |b| {
        b.iter(|| {
            let mut a = Analyzer::new(AnalysisOptions::retrieval());
            for t in &texts {
                black_box(a.analyze(t));
            }
        });
    });
    let dct = Date::from_ymd(2011, 6, 1).expect("valid");
    c.bench_function("tag_2000_sentences", |b| {
        let tagger = TemporalTagger::new();
        b.iter(|| {
            for t in &texts {
                black_box(tagger.tag(t, dct));
            }
        });
    });
}

fn bench_bm25(c: &mut Criterion) {
    let corpus = timeline17_corpus(0.02);
    let mut analyzer = Analyzer::new(AnalysisOptions::retrieval());
    let docs: Vec<Vec<u32>> = corpus
        .sentences
        .iter()
        .take(1000)
        .map(|s| analyzer.analyze(&s.text))
        .collect();
    let scorer = Bm25Scorer::fit(docs.iter().map(Vec::as_slice), Bm25Params::default());
    let query = analyzer.analyze_frozen(&corpus.query);
    c.bench_function("bm25_score_1000_docs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for d in &docs {
                acc += scorer.score(&query, d);
            }
            black_box(acc)
        });
    });
}

fn bench_rouge(c: &mut Criterion) {
    let corpus = timeline17_corpus(0.02);
    let sys: String = corpus
        .sentences
        .iter()
        .take(80)
        .map(|s| s.text.as_str())
        .collect::<Vec<_>>()
        .join(" ");
    let reference: String = corpus
        .sentences
        .iter()
        .skip(80)
        .take(80)
        .map(|s| s.text.as_str())
        .collect::<Vec<_>>()
        .join(" ");
    c.bench_function("rouge2_80_sentences", |b| {
        b.iter(|| {
            let mut r = RougeScorer::new();
            black_box(r.rouge_2(&sys, &reference))
        });
    });
    c.bench_function("rouge_s_star_80_sentences", |b| {
        b.iter(|| {
            let mut r = RougeScorer::new();
            black_box(r.rouge_s_star(&sys, &reference))
        });
    });
}

fn bench_affinity(c: &mut Criterion) {
    let corpus = timeline17_corpus(0.02);
    let mut embedder = SentenceEmbedder::new(256);
    let vectors: Vec<Vec<f64>> = corpus
        .sentences
        .iter()
        .take(120)
        .map(|s| embedder.embed(&s.text))
        .collect();
    let n = vectors.len();
    let sim: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|k| tl_embed::embedding::cosine(&vectors[i], &vectors[k]))
                .collect()
        })
        .collect();
    c.bench_function("affinity_propagation_120", |b| {
        b.iter(|| {
            black_box(affinity_propagation(
                &sim,
                &AffinityPropagationConfig::default(),
            ))
        });
    });
}

criterion_group!(
    benches,
    bench_pagerank,
    bench_analysis_and_tagging,
    bench_bm25,
    bench_rouge,
    bench_affinity
);
criterion_main!(benches);
