//! Open-loop load harness for the socket service (ISSUE 8 tentpole).
//!
//! Unlike the closed-loop `realtime.rs` bench (clients issue the next
//! query the moment the previous returns, so a slow server *slows the
//! load down* and hides queueing), this harness is **open-loop**: a seeded
//! schedule fixes every request's arrival time up front at a target rate,
//! and latency is measured **from the scheduled arrival**, not from send.
//! If the server falls behind, the backlog shows up as p99/p999 growth —
//! coordinated omission is impossible by construction.
//!
//! Mechanics: N client threads partition the schedule round-robin; each
//! request opens a fresh connection (`connection: close`), so the server's
//! admission control applies to every single request — a shed is an
//! observable `429`, never a silent queue. The client pool bounds
//! outstanding requests (a "partially open" generator, like wrk2), which
//! is documented in the report as `clients`.
//!
//! Traffic mix per schedule (seeded): 55% `/search`, 30% `/timeline`,
//! 10% `/ingest` (epoch bumps invalidate the timeline memo, forcing real
//! recomputes), 5% `/health`.
//!
//! `bench_serve` runs a rate ladder against a default-capacity server and
//! one deliberately capacity-starved overload window (1 worker, queue
//! depth 4) that must shed with `429`, and writes `BENCH_service.json`
//! (schema `tl-serve/v1`): per-endpoint p50/p99/p999 per rate, shed/failed
//! accounting, and the max sustainable QPS — the highest ladder rate whose
//! worst-endpoint p99 meets the SLO with shed rate below 1%.
//!
//! `bench_serve_smoke` is the CI gate: a short low-rate window that must
//! complete with zero sheds/failures and a sane p99; with
//! `TL_BENCH_ENFORCE=1` the fresh p99 must stay within 2x of the committed
//! baseline (plus an absolute floor so micro-windows on a loaded 1-core
//! box don't flake).
//!
//! Run with `cargo test -q -p tl-bench --test serve -- --ignored --nocapture`.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tl_bench::{repo_root, report_dir};
use tl_corpus::{generate, Article, SynthConfig};
use tl_support::http::{percent_encode, read_response, Server, ServerConfig};
use tl_support::json::{obj, Json};
use tl_support::rng::Rng;
use tl_support::ToJson;
use tl_wilson::{IngestRequest, RealTimeSystem, ServiceConfig, TimelineService, WilsonConfig};

/// Report schema tag (distinct from `tl-bench/v1`: service reports carry
/// per-endpoint percentiles and admission accounting, not bench medians).
const SERVE_SCHEMA: &str = "tl-serve/v1";
const REPORT_FILE: &str = "BENCH_service.json";
/// The p99 SLO a rate must meet (per endpoint) to count as sustainable.
/// Generous: the reference box is a single shared core.
const SLO_P99_S: f64 = 0.25;
/// Max shed fraction for a rate to count as sustainable.
const SLO_SHED_RATE: f64 = 0.01;

const ENDPOINTS: [&str; 4] = ["ingest", "search", "timeline", "health"];

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Op {
    Ingest,
    Search,
    Timeline,
    Health,
}

impl Op {
    fn name(self) -> &'static str {
        match self {
            Op::Ingest => "ingest",
            Op::Search => "search",
            Op::Timeline => "timeline",
            Op::Health => "health",
        }
    }
}

/// A seeded open-loop schedule: exponential (Poisson) inter-arrivals at
/// `rate` requests/second, `n` requests, mixed ops.
fn schedule(rate: f64, n: usize, seed: u64) -> Vec<(f64, Op)> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut at = 0.0f64;
    (0..n)
        .map(|_| {
            // U in (0, 1]: -ln(U)/rate is an exponential inter-arrival.
            let u = 1.0 - rng.gen_range(0.0..1.0);
            at += -u.ln() / rate;
            let op = match rng.gen_range(0..100u32) {
                0..=9 => Op::Ingest,
                10..=64 => Op::Search,
                65..=94 => Op::Timeline,
                _ => Op::Health,
            };
            (at, op)
        })
        .collect()
}

struct Fixture {
    service: Arc<TimelineService>,
    server: Server,
    search_req: Vec<u8>,
    timeline_target: String,
    health_req: Vec<u8>,
    next_id: AtomicUsize,
    start_date: tl_temporal::Date,
    /// When set, every `/timeline` request carries a distinct
    /// `fetch_limit`, so the epoch memo never serves it — each one is a
    /// real recompute. Used by the overload window to pin service time.
    bust_timeline: bool,
    bust: AtomicUsize,
}

fn fixture(server_config: ServerConfig, bust_timeline: bool) -> Fixture {
    let ds = generate(&SynthConfig::tiny());
    let topic = &ds.topics[0];
    let cfg = SynthConfig::tiny();
    let service = Arc::new(TimelineService::new(
        RealTimeSystem::new(WilsonConfig::default()),
        ServiceConfig::default().with_server(server_config),
    ));
    service.system().ingest_all(&topic.articles).unwrap();
    let server = service.serve("127.0.0.1:0").unwrap();
    let q = percent_encode(&topic.query);
    let from = cfg.start_date;
    let to = cfg.start_date.plus_days(cfg.duration_days as i32);
    let get = |target: &str| {
        format!("GET {target} HTTP/1.1\r\nhost: localhost\r\nconnection: close\r\n\r\n")
            .into_bytes()
    };
    Fixture {
        search_req: get(&format!("/search?q={q}&limit=10")),
        timeline_target: format!(
            "/timeline?q={q}&from={from}&to={to}&num_dates=5&sents_per_date=2"
        ),
        health_req: get("/health"),
        next_id: AtomicUsize::new(1_000_000),
        start_date: cfg.start_date,
        bust_timeline,
        bust: AtomicUsize::new(0),
        service,
        server,
    }
}

impl Fixture {
    fn request_bytes(&self, op: Op) -> Vec<u8> {
        match op {
            Op::Search => self.search_req.clone(),
            Op::Timeline => {
                let target = if self.bust_timeline {
                    let k = self.bust.fetch_add(1, Ordering::Relaxed) % 512;
                    format!("{}&fetch_limit={}", self.timeline_target, 900 + k)
                } else {
                    self.timeline_target.clone()
                };
                format!(
                    "GET {target} HTTP/1.1\r\nhost: localhost\r\nconnection: close\r\n\r\n"
                )
                .into_bytes()
            }
            Op::Health => self.health_req.clone(),
            Op::Ingest => {
                let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                let body = IngestRequest {
                    articles: vec![Article {
                        id,
                        pub_date: self.start_date.plus_days((id % 60) as i32),
                        sentences: vec![format!("Load generated update number {id}.")],
                    }],
                }
                .to_json()
                .to_string_compact();
                format!(
                    "POST /ingest HTTP/1.1\r\nhost: localhost\r\n\
                     content-type: application/json\r\ncontent-length: {}\r\n\
                     connection: close\r\n\r\n{body}",
                    body.len()
                )
                .into_bytes()
            }
        }
    }
}

/// One request's fate in a load window.
struct Sample {
    op: Op,
    status: u16,
    /// Seconds from *scheduled arrival* to full response, `None` on a
    /// connection-level failure.
    latency: Option<f64>,
}

/// Drive one open-loop window against the fixture and collect every
/// request's outcome.
fn run_window(fx: &Fixture, sched: &[(f64, Op)], clients: usize) -> (Vec<Sample>, f64) {
    let addr = fx.server.addr();
    let t0 = Instant::now();
    let samples: Vec<Sample> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    for (at, op) in sched.iter().skip(client).step_by(clients) {
                        let now = t0.elapsed().as_secs_f64();
                        if *at > now {
                            std::thread::sleep(Duration::from_secs_f64(at - now));
                        }
                        let wire = fx.request_bytes(*op);
                        let outcome = TcpStream::connect(addr).and_then(|mut stream| {
                            stream.set_read_timeout(Some(Duration::from_secs(30)))?;
                            stream.set_nodelay(true)?;
                            stream.write_all(&wire)?;
                            read_response(&mut stream)
                        });
                        mine.push(match outcome {
                            Ok(resp) => Sample {
                                op: *op,
                                status: resp.status,
                                latency: Some(t0.elapsed().as_secs_f64() - at),
                            },
                            Err(_) => Sample {
                                op: *op,
                                status: 0,
                                latency: None,
                            },
                        });
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client panicked"))
            .collect()
    });
    (samples, t0.elapsed().as_secs_f64())
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Summary of one rate window, plus its JSON report entry.
struct WindowSummary {
    sent: usize,
    completed: usize,
    shed: usize,
    failed: usize,
    shed_rate: f64,
    worst_p99: f64,
    entry: Json,
}

fn summarize(label: &str, rate: f64, samples: &[Sample], elapsed: f64) -> WindowSummary {
    let sent = samples.len();
    let completed = samples.iter().filter(|s| s.status == 200).count();
    let shed = samples.iter().filter(|s| s.status == 429).count();
    let failed = samples.iter().filter(|s| s.latency.is_none()).count();
    let other = sent - completed - shed - failed;
    assert_eq!(
        other, 0,
        "{label}: every request must resolve to 200, 429 or a connection \
         failure; got {other} with some other status"
    );
    let shed_rate = (shed + failed) as f64 / sent.max(1) as f64;
    let mut worst_p99 = 0.0f64;
    let mut endpoints = Vec::new();
    for op in [Op::Ingest, Op::Search, Op::Timeline, Op::Health] {
        let mut lats: Vec<f64> = samples
            .iter()
            .filter(|s| s.op == op && s.status == 200)
            .filter_map(|s| s.latency)
            .collect();
        lats.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let p99 = percentile(&lats, 0.99);
        if !lats.is_empty() {
            worst_p99 = worst_p99.max(p99);
        }
        endpoints.push((
            op.name(),
            obj(vec![
                ("count", Json::Num(lats.len() as f64)),
                ("p50_s", Json::Num(percentile(&lats, 0.50))),
                ("p99_s", Json::Num(p99)),
                ("p999_s", Json::Num(percentile(&lats, 0.999))),
            ]),
        ));
    }
    let entry = obj(vec![
        ("label", Json::Str(label.to_string())),
        ("rate_qps", Json::Num(rate)),
        ("achieved_qps", Json::Num(sent as f64 / elapsed.max(1e-9))),
        ("sent", Json::Num(sent as f64)),
        ("completed", Json::Num(completed as f64)),
        ("shed", Json::Num(shed as f64)),
        ("failed", Json::Num(failed as f64)),
        ("shed_rate", Json::Num(shed_rate)),
        ("endpoints", obj(endpoints)),
    ]);
    println!(
        "serve/{label}: offered {rate:.0} qps, sent {sent}, completed {completed}, \
         shed {shed}, failed {failed}, worst p99 {:.1} ms",
        worst_p99 * 1e3
    );
    WindowSummary {
        sent,
        completed,
        shed,
        failed,
        shed_rate,
        worst_p99,
        entry,
    }
}

/// Full ladder + overload run; writes `BENCH_service.json`.
#[test]
#[ignore = "benchmark"]
fn bench_serve() {
    const LADDER: [f64; 3] = [100.0, 250.0, 500.0];
    const CLIENTS: usize = 16;

    let fx = fixture(
        ServerConfig::default().with_workers(4).with_queue_depth(64),
        false,
    );
    // Warmup: populate the timeline memo and fault in lazy state.
    run_window(&fx, &schedule(50.0, 50, 0xC0FF_EE00), 4);

    let mut rate_entries = Vec::new();
    let mut max_sustainable = 0.0f64;
    for (i, rate) in LADDER.into_iter().enumerate() {
        let n = (rate * 2.0) as usize; // ~2s window per rate
        let sched = schedule(rate, n, 0xC1A0_0000 + i as u64);
        let (samples, elapsed) = run_window(&fx, &sched, CLIENTS);
        let s = summarize(&format!("rate_{rate:.0}"), rate, &samples, elapsed);
        if s.shed_rate < SLO_SHED_RATE && s.worst_p99 <= SLO_P99_S {
            max_sustainable = max_sustainable.max(rate);
        }
        rate_entries.push(s.entry);
    }
    fx.server.shutdown();

    // Overload window: a deliberately capacity-starved server (1 worker,
    // queue depth 4) under timeline-only, cache-busting traffic far past
    // its capacity (every request is a real ~ms recompute). Admission
    // control must shed with 429 — and every request still resolves (the
    // `summarize` invariant), no deadlock, no panic.
    let ofx = fixture(
        ServerConfig::default().with_workers(1).with_queue_depth(4),
        true,
    );
    let sched: Vec<(f64, Op)> = schedule(1000.0, 1200, 0x0DD_10AD)
        .into_iter()
        .map(|(at, _)| (at, Op::Timeline))
        .collect();
    let (samples, elapsed) = run_window(&ofx, &sched, CLIENTS);
    let o = summarize("overload", 1000.0, &samples, elapsed);
    assert!(
        o.shed > 0,
        "the overload window must exercise admission shedding"
    );
    assert_eq!(o.sent, o.completed + o.shed + o.failed);
    // The starved server itself stays consistent after the storm. The
    // `completed` counter is bumped after the response is already readable
    // by the client, so poll for the ledger to balance rather than
    // asserting a snapshot.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let m = ofx.server.metrics();
        if m.queued == 0 && m.in_flight == 0 && m.accepted == m.completed + m.shed {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "overload ledger never balanced: {m:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    ofx.server.shutdown();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let doc = obj(vec![
        ("schema", Json::Str(SERVE_SCHEMA.to_string())),
        ("slo_p99_s", Json::Num(SLO_P99_S)),
        ("slo_shed_rate", Json::Num(SLO_SHED_RATE)),
        ("clients", Json::Num(CLIENTS as f64)),
        ("max_sustainable_qps", Json::Num(max_sustainable)),
        ("meta_available_parallelism", Json::Num(cores as f64)),
        ("rates", Json::Arr(rate_entries)),
        ("overload", o.entry),
    ]);
    let dir = report_dir();
    std::fs::create_dir_all(&dir).expect("create report dir");
    let mut text = doc.to_string_pretty();
    text.push('\n');
    let path = dir.join(REPORT_FILE);
    std::fs::write(&path, text).expect("write service report");
    println!(
        "serve: max sustainable {max_sustainable:.0} qps \
         (p99 <= {SLO_P99_S}s, shed < {:.0}%) -> {}",
        SLO_SHED_RATE * 100.0,
        path.display()
    );
}

/// Worst committed per-endpoint p99 at the lowest ladder rate, for the
/// enforce gate.
fn baseline_worst_p99() -> Option<f64> {
    let text = std::fs::read_to_string(repo_root().join(REPORT_FILE)).ok()?;
    let doc = Json::parse(&text).ok()?;
    if doc.get("schema").and_then(Json::as_str) != Some(SERVE_SCHEMA) {
        return None;
    }
    let first = doc.get("rates")?.as_arr()?.first()?;
    let endpoints = first.get("endpoints")?;
    ENDPOINTS
        .iter()
        .filter_map(|name| endpoints.get(name)?.get("p99_s")?.as_f64())
        .fold(None, |acc: Option<f64>, p| Some(acc.map_or(p, |a| a.max(p))))
}

/// CI smoke gate: short low-rate window, zero sheds, sane tail latency.
#[test]
#[ignore = "benchmark"]
fn bench_serve_smoke() {
    let fx = fixture(
        ServerConfig::default().with_workers(4).with_queue_depth(64),
        false,
    );
    run_window(&fx, &schedule(25.0, 25, 0xBEEF), 4); // warmup
    let sched = schedule(50.0, 75, 0x5440_CAFE);
    let (samples, elapsed) = run_window(&fx, &sched, 8);
    let s = summarize("smoke", 50.0, &samples, elapsed);
    assert_eq!(s.shed, 0, "smoke run must not shed at 50 qps");
    assert_eq!(s.failed, 0, "smoke run must not drop connections");
    assert_eq!(s.completed, s.sent);
    // Generous absolute ceiling — the gate catches hangs and gross
    // regressions, not scheduler noise on a shared core.
    assert!(
        s.worst_p99 <= 2.0,
        "smoke p99 {:.1} ms exceeds the 2 s sanity ceiling",
        s.worst_p99 * 1e3
    );
    if std::env::var("TL_BENCH_ENFORCE").as_deref() == Ok("1") {
        let baseline = baseline_worst_p99()
            .expect("committed BENCH_service.json must exist with schema tl-serve/v1");
        let ceiling = (2.0 * baseline).max(0.1);
        assert!(
            s.worst_p99 <= ceiling,
            "smoke worst p99 {:.1} ms regressed past 2x committed baseline \
             {:.1} ms (ceiling {:.1} ms)",
            s.worst_p99 * 1e3,
            baseline * 1e3,
            ceiling * 1e3
        );
    }
    // The service's own accounting agrees with the wire: completions per
    // endpoint match what clients observed.
    let counts = fx.service.endpoint_counts();
    let wire_completed: u64 = counts.iter().map(|c| c.completed).sum();
    assert!(wire_completed >= s.completed as u64);
    fx.server.shutdown();
}
