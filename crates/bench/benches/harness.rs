//! Wall-clock of the evaluation harness itself: one `evaluate_methods`
//! pass over a Timeline17-profile dataset with the Table 7 roster — the
//! workload `run_all` repeats per table, so its wall time tracks how long
//! regenerating the paper takes end to end.
//!
//! Run with `cargo test -q -p tl-bench -- --ignored --nocapture`.

use std::hint::black_box;
use tl_baselines::TilseBaseline;
use tl_bench::bench_reported;
use tl_corpus::{generate, SynthConfig, TimelineGenerator};
use tl_eval::evaluate_methods;
use tl_wilson::{Wilson, WilsonConfig};

#[test]
#[ignore = "benchmark"]
fn bench_run_all_wall() {
    // A reduced scale of the Table 7 setting (9 topics, all six systems):
    // large enough that the shared-tokenization and kernel savings dominate,
    // small enough to iterate.
    let ds = generate(&SynthConfig::timeline17().with_scale(0.02));
    let methods: Vec<Box<dyn TimelineGenerator>> = vec![
        Box::new(TilseBaseline::asmds()),
        Box::new(TilseBaseline::tls_constraints()),
        Box::new(Wilson::new(WilsonConfig::uniform())),
        Box::new(Wilson::new(WilsonConfig::tran())),
        Box::new(Wilson::new(WilsonConfig::without_post())),
        Box::new(Wilson::new(WilsonConfig::default())),
    ];
    let refs: Vec<&dyn TimelineGenerator> = methods.iter().map(Box::as_ref).collect();
    bench_reported("BENCH_eval.json", "harness/run_all_wall", || {
        black_box(evaluate_methods(&ds, &refs));
    });
}
