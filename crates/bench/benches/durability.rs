//! Durability cost of the crash-safe real-time engine: what does the WAL
//! buy and what does it charge?
//!
//! * `durability/ingest_volatile_1k` — 1k dated sentences into the purely
//!   in-memory sharded engine (publish every 100),
//! * `durability/ingest_wal_1k` — the same 1k sentences through
//!   [`DurableEngine`] on [`FileStorage`] (WAL append per insert, fsync
//!   barrier per publish). The acceptance gate: the WAL path must stay
//!   within **3×** of the volatile path in the same run (the budget was
//!   2× before the in-memory engine's shared-vocabulary publish made the
//!   volatile denominator ~2× faster; the WAL path's absolute cost is
//!   unchanged and separately gated against its committed baseline),
//! * `durability/recovery_1k` / `durability/recovery_10k` — wall time of
//!   [`DurableEngine::open`] on a directory holding that many durable
//!   records (the 10k log crosses the default snapshot cadence's publish
//!   batching, so recovery replays a realistic snapshot + WAL mix).
//!
//! Results go to `BENCH_durability.json`; with `TL_BENCH_ENFORCE=1` each
//! fresh median must also stay within 2× of its committed baseline.
//!
//! Run with `cargo test -q -p tl-bench --test durability -- --ignored --nocapture`.

use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;
use tl_bench::{baseline_median, bench, record, timeline17_corpus};
use tl_corpus::DatedSentence;
use tl_ir::{DurabilityConfig, DurableEngine, ShardedSearchConfig, ShardedSearchEngine};
use tl_support::storage::FileStorage;

const PUBLISH_EVERY: usize = 100;

fn corpus(n: usize) -> Vec<DatedSentence> {
    let base = timeline17_corpus(0.05).sentences;
    assert!(!base.is_empty());
    (0..n).map(|i| base[i % base.len()].clone()).collect()
}

fn scratch_root() -> PathBuf {
    std::env::temp_dir().join(format!("tl-bench-durability-{}", std::process::id()))
}

fn enforce() -> bool {
    std::env::var("TL_BENCH_ENFORCE").as_deref() == Ok("1")
}

fn gate_baseline(name: &str, fresh_median: f64, regressions: &mut Vec<String>) {
    if !enforce() {
        return;
    }
    let baseline = baseline_median("BENCH_durability.json", name)
        .unwrap_or_else(|| panic!("committed BENCH_durability.json must contain {name}"));
    if fresh_median > 2.0 * baseline {
        regressions.push(format!(
            "{name}: median {:.1} ms > 2x baseline {:.1} ms",
            fresh_median * 1e3,
            baseline * 1e3
        ));
    }
}

fn ingest_volatile(docs: &[DatedSentence]) -> ShardedSearchEngine {
    let engine = ShardedSearchEngine::new(ShardedSearchConfig::default());
    for (i, ds) in docs.iter().enumerate() {
        engine.insert(ds.date, ds.pub_date, &ds.text);
        if (i + 1) % PUBLISH_EVERY == 0 {
            engine.publish();
        }
    }
    engine.publish();
    engine
}

fn ingest_durable(dir: &PathBuf, docs: &[DatedSentence], config: DurabilityConfig) -> usize {
    let storage = Arc::new(FileStorage::open(dir).expect("open bench scratch dir"));
    let engine = DurableEngine::open(storage, ShardedSearchConfig::default(), config)
        .expect("open durable engine");
    for (i, ds) in docs.iter().enumerate() {
        engine.insert(ds.date, ds.pub_date, &ds.text).expect("durable insert");
        if (i + 1) % PUBLISH_EVERY == 0 {
            engine.publish().expect("durable publish");
        }
    }
    engine.publish().expect("durable publish");
    engine.len()
}

#[test]
#[ignore = "benchmark"]
fn bench_wal_ingest_overhead() {
    let docs = corpus(1_000);
    let root = scratch_root();
    let mut regressions = Vec::new();

    let volatile = bench("durability/ingest_volatile_1k", || {
        black_box(ingest_volatile(&docs).len());
    });
    record("BENCH_durability.json", "durability/ingest_volatile_1k", &volatile);
    gate_baseline("durability/ingest_volatile_1k", volatile.median, &mut regressions);

    // A fresh directory per run so every measured iteration pays the whole
    // WAL from byte zero (snapshots off: this entry isolates append+fsync
    // cost; compaction is measured by the recovery entries below).
    let mut run = 0usize;
    let wal = bench("durability/ingest_wal_1k", || {
        run += 1;
        let dir = root.join(format!("ingest-{run}"));
        let _ = std::fs::remove_dir_all(&dir);
        black_box(ingest_durable(
            &dir,
            &docs,
            DurabilityConfig::default().with_snapshot_every(0),
        ));
        let _ = std::fs::remove_dir_all(&dir);
    });
    record("BENCH_durability.json", "durability/ingest_wal_1k", &wal);
    gate_baseline("durability/ingest_wal_1k", wal.median, &mut regressions);

    println!(
        "bench durability: WAL ingest overhead {:.2}x over in-memory",
        wal.median / volatile.median
    );
    // The headline acceptance gate is an intra-run comparison (same
    // machine, same moment), so it holds unconditionally — not only under
    // TL_BENCH_ENFORCE.
    assert!(
        wal.median <= 3.0 * volatile.median,
        "WAL ingest overhead too high: {:.3} ms durable vs {:.3} ms volatile (> 3x)",
        wal.median * 1e3,
        volatile.median * 1e3
    );
    assert!(regressions.is_empty(), "durability ingest regressions:\n{}", regressions.join("\n"));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
#[ignore = "benchmark"]
fn bench_recovery_wall_time() {
    let root = scratch_root();
    let mut regressions = Vec::new();
    for &n in &[1_000usize, 10_000] {
        let docs = corpus(n);
        let dir = root.join(format!("recovery-{n}"));
        let _ = std::fs::remove_dir_all(&dir);
        // Default durability config: the 10k log crosses the snapshot
        // cadence, so recovery loads a snapshot + replays the WAL tail;
        // the 1k log is pure WAL replay.
        let expected = ingest_durable(&dir, &docs, DurabilityConfig::default());
        assert_eq!(expected, n);

        let name = format!("durability/recovery_{}k", n / 1_000);
        let stats = bench(&name, || {
            let storage = Arc::new(FileStorage::open(&dir).expect("reopen bench dir"));
            let engine = DurableEngine::open(
                storage,
                ShardedSearchConfig::default(),
                DurabilityConfig::default(),
            )
            .expect("recovery");
            assert_eq!(engine.len(), n);
            black_box(engine.epoch());
        });
        record("BENCH_durability.json", &name, &stats);
        gate_baseline(&name, stats.median, &mut regressions);
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(regressions.is_empty(), "recovery regressions:\n{}", regressions.join("\n"));
    let _ = std::fs::remove_dir_all(&root);
}
