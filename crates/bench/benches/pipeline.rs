//! **Table 7's runtime column** as wall-clock benches: seconds per timeline
//! for every measured method on one Timeline17-profile topic, plus the two
//! ablations DESIGN.md calls out — post-processing cost and the
//! parallel-vs-serial daily summarization (§2.3.1).
//!
//! Run with `cargo test -q -p tl-bench -- --ignored --nocapture`.

use std::hint::black_box;
use tl_baselines::{ChieuBaseline, EtsBaseline, MeadBaseline, RandomBaseline, TilseBaseline};
use tl_bench::{bench_reported, timeline17_corpus};
use tl_corpus::TimelineGenerator;
use tl_wilson::{Wilson, WilsonConfig};

/// CI smoke bench: a small full-pipeline run that (1) exercises the report
/// writer and re-parses its output, and (2) with `TL_BENCH_ENFORCE=1`
/// fails when the fresh median regresses more than 2× over the committed
/// `BENCH_pipeline.json` baseline. `scripts/ci.sh` runs this with
/// `TL_BENCH_REPORT_DIR` pointed at a scratch directory so the committed
/// baseline is read-only for the gate.
#[test]
#[ignore = "benchmark"]
fn bench_smoke() {
    use tl_bench::{baseline_median, report_dir, REPORT_SCHEMA};
    use tl_support::json::Json;

    let corpus = timeline17_corpus(0.005);
    let wilson = Wilson::new(WilsonConfig::default());
    let stats = bench_reported("BENCH_pipeline.json", "pipeline/smoke", || {
        black_box(wilson.generate(&corpus.sentences, &corpus.query, corpus.t, corpus.n));
    });

    // The written report must parse and contain the fresh entry.
    let path = report_dir().join("BENCH_pipeline.json");
    let text = std::fs::read_to_string(&path).expect("report written");
    let doc = Json::parse(&text).expect("report parses");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some(REPORT_SCHEMA));
    let written = doc
        .get("benches")
        .and_then(Json::as_arr)
        .and_then(|bs| {
            bs.iter()
                .find(|b| b.get("name").and_then(Json::as_str) == Some("pipeline/smoke"))
        })
        .and_then(|b| b.get("median_s"))
        .and_then(Json::as_f64)
        .expect("smoke entry present");
    assert_eq!(written, stats.median);

    // Regression gate against the committed baseline (same-machine CI).
    if std::env::var("TL_BENCH_ENFORCE").as_deref() == Ok("1") {
        let baseline = baseline_median("BENCH_pipeline.json", "pipeline/smoke")
            .expect("committed BENCH_pipeline.json must contain pipeline/smoke");
        assert!(
            stats.median <= 2.0 * baseline,
            "pipeline smoke bench regressed: median {:.3} ms > 2x baseline {:.3} ms",
            stats.median * 1e3,
            baseline * 1e3
        );
    }
}

/// Table 7's runtime column. With `TL_BENCH_ENFORCE=1` this is also a
/// regression gate: every fresh `table7_runtime/*` median must stay within
/// 2× of its committed `BENCH_pipeline.json` baseline (same-machine CI),
/// so a slowdown in any baseline — e.g. losing the all-pairs kernel — fails
/// the suite, not just the WILSON smoke entry.
#[test]
#[ignore = "benchmark"]
fn bench_methods() {
    let corpus = timeline17_corpus(0.02);
    let methods: Vec<Box<dyn TimelineGenerator>> = vec![
        Box::new(RandomBaseline::default()),
        Box::new(MeadBaseline::default()),
        Box::new(ChieuBaseline::default()),
        Box::new(EtsBaseline::default()),
        Box::new(TilseBaseline::asmds()),
        Box::new(TilseBaseline::tls_constraints()),
        Box::new(Wilson::new(WilsonConfig::uniform())),
        Box::new(Wilson::new(WilsonConfig::tran())),
        Box::new(Wilson::new(WilsonConfig::without_post())),
        Box::new(Wilson::new(WilsonConfig::default())),
    ];
    let enforce = std::env::var("TL_BENCH_ENFORCE").as_deref() == Ok("1");
    let mut regressions = Vec::new();
    for m in &methods {
        let name = format!("table7_runtime/{}", m.name().replace([' ', '/'], "_"));
        let stats = bench_reported("BENCH_pipeline.json", &name, || {
            black_box(m.generate(&corpus.sentences, &corpus.query, corpus.t, corpus.n));
        });
        if enforce {
            let baseline = tl_bench::baseline_median("BENCH_pipeline.json", &name)
                .unwrap_or_else(|| panic!("committed BENCH_pipeline.json must contain {name}"));
            if stats.median > 2.0 * baseline {
                regressions.push(format!(
                    "{name}: median {:.1} ms > 2x baseline {:.1} ms",
                    stats.median * 1e3,
                    baseline * 1e3
                ));
            }
        }
    }
    assert!(
        regressions.is_empty(),
        "table7 runtime regressions:\n{}",
        regressions.join("\n")
    );
}

#[test]
#[ignore = "benchmark"]
fn bench_ablations() {
    let corpus = timeline17_corpus(0.03);
    let parallel = Wilson::new(WilsonConfig::default().with_parallel(true));
    bench_reported("BENCH_pipeline.json", "wilson_ablations/parallel_days", || {
        black_box(parallel.generate(&corpus.sentences, &corpus.query, corpus.t, corpus.n));
    });
    let serial = Wilson::new(WilsonConfig::default().with_parallel(false));
    bench_reported("BENCH_pipeline.json", "wilson_ablations/serial_days", || {
        black_box(serial.generate(&corpus.sentences, &corpus.query, corpus.t, corpus.n));
    });
    let with_post = Wilson::new(WilsonConfig::default());
    bench_reported("BENCH_pipeline.json", "wilson_ablations/with_postprocess", || {
        black_box(with_post.generate(&corpus.sentences, &corpus.query, corpus.t, corpus.n));
    });
    let without_post = Wilson::new(WilsonConfig::without_post());
    bench_reported("BENCH_pipeline.json", "wilson_ablations/without_postprocess", || {
        black_box(without_post.generate(&corpus.sentences, &corpus.query, corpus.t, corpus.n));
    });
    // Date-selection stage in isolation (the O(T^2) term of §2.5).
    let wilson = Wilson::new(WilsonConfig::default());
    bench_reported("BENCH_pipeline.json", "wilson_ablations/date_selection_only", || {
        black_box(wilson.select_dates(&corpus.sentences, &corpus.query, corpus.t));
    });
}

#[test]
#[ignore = "benchmark"]
fn bench_realtime() {
    // §5 claim: query-to-timeline in seconds on a large index. Ingest once,
    // then measure pure query latency.
    use tl_corpus::{generate, SynthConfig};
    use tl_wilson::realtime::TimelineQuery;
    use tl_wilson::RealTimeSystem;

    let dataset = generate(&SynthConfig::timeline17().with_scale(0.05));
    let system = RealTimeSystem::new(WilsonConfig::default());
    for topic in &dataset.topics {
        system.ingest_all(&topic.articles).unwrap();
    }
    let cfg = SynthConfig::timeline17();
    let query = TimelineQuery {
        keywords: dataset.topics[0].query.clone(),
        window: (
            cfg.start_date,
            cfg.start_date.plus_days(cfg.duration_days as i32),
        ),
        num_dates: 10,
        sents_per_date: 2,
        fetch_limit: 2000,
    };
    // Cold path: vary the cache key each iteration so every run pays the
    // full fetch + WILSON cost (fetch_limit past the hit count fetches the
    // same sentences but is a distinct memo entry).
    let mut bump = 0usize;
    bench_reported(
        "BENCH_pipeline.json",
        &format!("realtime/query_over_{}_sentences", system.num_sentences()),
        || {
            bump += 1;
            let cold = TimelineQuery {
                fetch_limit: query.fetch_limit + bump,
                ..query.clone()
            };
            black_box(system.timeline(&cold).unwrap());
        },
    );
    // Warm path: the §5 dashboard scenario — the same query repeated with
    // no intervening ingestion is served from the epoch-keyed memo.
    system.timeline(&query).unwrap();
    bench_reported("BENCH_pipeline.json", "realtime/repeated_query_cached", || {
        black_box(system.timeline(&query).unwrap());
    });
}
