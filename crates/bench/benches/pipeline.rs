//! **Table 7's runtime column** as wall-clock benches: seconds per timeline
//! for every measured method on one Timeline17-profile topic, plus the two
//! ablations DESIGN.md calls out — post-processing cost and the
//! parallel-vs-serial daily summarization (§2.3.1).
//!
//! Run with `cargo test -q -p tl-bench -- --ignored --nocapture`.

use std::hint::black_box;
use tl_baselines::{ChieuBaseline, EtsBaseline, MeadBaseline, RandomBaseline, TilseBaseline};
use tl_bench::{bench, timeline17_corpus};
use tl_corpus::TimelineGenerator;
use tl_wilson::{Wilson, WilsonConfig};

#[test]
#[ignore = "benchmark"]
fn bench_methods() {
    let corpus = timeline17_corpus(0.02);
    let methods: Vec<Box<dyn TimelineGenerator>> = vec![
        Box::new(RandomBaseline::default()),
        Box::new(MeadBaseline::default()),
        Box::new(ChieuBaseline::default()),
        Box::new(EtsBaseline::default()),
        Box::new(TilseBaseline::asmds()),
        Box::new(TilseBaseline::tls_constraints()),
        Box::new(Wilson::new(WilsonConfig::uniform())),
        Box::new(Wilson::new(WilsonConfig::tran())),
        Box::new(Wilson::new(WilsonConfig::without_post())),
        Box::new(Wilson::new(WilsonConfig::default())),
    ];
    for m in &methods {
        let name = format!("table7_runtime/{}", m.name().replace([' ', '/'], "_"));
        bench(&name, || {
            black_box(m.generate(&corpus.sentences, &corpus.query, corpus.t, corpus.n));
        });
    }
}

#[test]
#[ignore = "benchmark"]
fn bench_ablations() {
    let corpus = timeline17_corpus(0.03);
    let parallel = Wilson::new(WilsonConfig::default().with_parallel(true));
    bench("wilson_ablations/parallel_days", || {
        black_box(parallel.generate(&corpus.sentences, &corpus.query, corpus.t, corpus.n));
    });
    let serial = Wilson::new(WilsonConfig::default().with_parallel(false));
    bench("wilson_ablations/serial_days", || {
        black_box(serial.generate(&corpus.sentences, &corpus.query, corpus.t, corpus.n));
    });
    let with_post = Wilson::new(WilsonConfig::default());
    bench("wilson_ablations/with_postprocess", || {
        black_box(with_post.generate(&corpus.sentences, &corpus.query, corpus.t, corpus.n));
    });
    let without_post = Wilson::new(WilsonConfig::without_post());
    bench("wilson_ablations/without_postprocess", || {
        black_box(without_post.generate(&corpus.sentences, &corpus.query, corpus.t, corpus.n));
    });
    // Date-selection stage in isolation (the O(T^2) term of §2.5).
    let wilson = Wilson::new(WilsonConfig::default());
    bench("wilson_ablations/date_selection_only", || {
        black_box(wilson.select_dates(&corpus.sentences, &corpus.query, corpus.t));
    });
}

#[test]
#[ignore = "benchmark"]
fn bench_realtime() {
    // §5 claim: query-to-timeline in seconds on a large index. Ingest once,
    // then measure pure query latency.
    use tl_corpus::{generate, SynthConfig};
    use tl_wilson::realtime::TimelineQuery;
    use tl_wilson::RealTimeSystem;

    let dataset = generate(&SynthConfig::timeline17().with_scale(0.05));
    let mut system = RealTimeSystem::new(WilsonConfig::default());
    for topic in &dataset.topics {
        system.ingest_all(&topic.articles);
    }
    let cfg = SynthConfig::timeline17();
    let query = TimelineQuery {
        keywords: dataset.topics[0].query.clone(),
        window: (
            cfg.start_date,
            cfg.start_date.plus_days(cfg.duration_days as i32),
        ),
        num_dates: 10,
        sents_per_date: 2,
        fetch_limit: 2000,
    };
    bench(
        &format!("realtime/query_over_{}_sentences", system.num_sentences()),
        || {
            black_box(system.timeline(&query));
        },
    );
}
