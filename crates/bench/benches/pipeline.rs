//! **Table 7's runtime column** as Criterion benches: seconds per timeline
//! for every measured method on one Timeline17-profile topic, plus the two
//! ablations DESIGN.md calls out — post-processing cost and the
//! parallel-vs-serial daily summarization (§2.3.1).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tl_baselines::{ChieuBaseline, EtsBaseline, MeadBaseline, RandomBaseline, TilseBaseline};
use tl_bench::timeline17_corpus;
use tl_corpus::TimelineGenerator;
use tl_wilson::{Wilson, WilsonConfig};

fn bench_methods(c: &mut Criterion) {
    let corpus = timeline17_corpus(0.02);
    let mut group = c.benchmark_group("table7_runtime");
    group.sample_size(10);
    let methods: Vec<Box<dyn TimelineGenerator>> = vec![
        Box::new(RandomBaseline::default()),
        Box::new(MeadBaseline::default()),
        Box::new(ChieuBaseline::default()),
        Box::new(EtsBaseline::default()),
        Box::new(TilseBaseline::asmds()),
        Box::new(TilseBaseline::tls_constraints()),
        Box::new(Wilson::new(WilsonConfig::uniform())),
        Box::new(Wilson::new(WilsonConfig::tran())),
        Box::new(Wilson::new(WilsonConfig::without_post())),
        Box::new(Wilson::new(WilsonConfig::default())),
    ];
    for m in &methods {
        group.bench_function(m.name().replace([' ', '/'], "_"), |b| {
            b.iter(|| black_box(m.generate(&corpus.sentences, &corpus.query, corpus.t, corpus.n)));
        });
    }
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let corpus = timeline17_corpus(0.03);
    let mut group = c.benchmark_group("wilson_ablations");
    group.sample_size(10);
    group.bench_function("parallel_days", |b| {
        let m = Wilson::new(WilsonConfig::default().with_parallel(true));
        b.iter(|| black_box(m.generate(&corpus.sentences, &corpus.query, corpus.t, corpus.n)));
    });
    group.bench_function("serial_days", |b| {
        let m = Wilson::new(WilsonConfig::default().with_parallel(false));
        b.iter(|| black_box(m.generate(&corpus.sentences, &corpus.query, corpus.t, corpus.n)));
    });
    group.bench_function("with_postprocess", |b| {
        let m = Wilson::new(WilsonConfig::default());
        b.iter(|| black_box(m.generate(&corpus.sentences, &corpus.query, corpus.t, corpus.n)));
    });
    group.bench_function("without_postprocess", |b| {
        let m = Wilson::new(WilsonConfig::without_post());
        b.iter(|| black_box(m.generate(&corpus.sentences, &corpus.query, corpus.t, corpus.n)));
    });
    // Date-selection stage in isolation (the O(T^2) term of §2.5).
    group.bench_function("date_selection_only", |b| {
        let m = Wilson::new(WilsonConfig::default());
        b.iter(|| black_box(m.select_dates(&corpus.sentences, &corpus.query, corpus.t)));
    });
    group.finish();
}

fn bench_realtime(c: &mut Criterion) {
    // §5 claim: query-to-timeline in seconds on a large index. Ingest once,
    // then measure pure query latency.
    use tl_corpus::{generate, SynthConfig};
    use tl_wilson::realtime::TimelineQuery;
    use tl_wilson::RealTimeSystem;

    let dataset = generate(&SynthConfig::timeline17().with_scale(0.05));
    let mut system = RealTimeSystem::new(WilsonConfig::default());
    for topic in &dataset.topics {
        system.ingest_all(&topic.articles);
    }
    let cfg = SynthConfig::timeline17();
    let query = TimelineQuery {
        keywords: dataset.topics[0].query.clone(),
        window: (
            cfg.start_date,
            cfg.start_date.plus_days(cfg.duration_days as i32),
        ),
        num_dates: 10,
        sents_per_date: 2,
        fetch_limit: 2000,
    };
    let mut group = c.benchmark_group("realtime");
    group.sample_size(10);
    group.bench_function(
        format!("query_over_{}_sentences", system.num_sentences()),
        |b| b.iter(|| black_box(system.timeline(&query))),
    );
    group.finish();
}

criterion_group!(benches, bench_methods, bench_ablations, bench_realtime);
criterion_main!(benches);
