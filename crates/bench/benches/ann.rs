//! ANN scaling bench: index build time, p50/p95 query latency, resident
//! bytes, and recall@10 vs brute force across corpus size tiers — the
//! million-sentence-scale evidence for ROADMAP item 3.
//!
//! Writes **BENCH_scaling.json** with per-tier entries (`{n}` = exact
//! sentence count of the tier, deterministic given the seeded generator):
//!
//! * `ann/build_s/{n}` — embed + index build wall-clock (1 iteration),
//! * `ann/query/{n}` / `brute/query/{n}` — per-query latency over
//!   [`QUERIES`] corpus-sentence queries (median = p50),
//! * `ann/filtered_query/{n}` — date-range-restricted ANN queries,
//! * `ann/recall_at_10/{n}` — mean recall@10 vs `search_exact`, stored in
//!   the `median_s` field (it is a ratio, not seconds; `p95_s` holds the
//!   minimum per-query recall),
//! * `ann/memory_bytes/{n}` — `AnnIndex::memory_bytes()` in `median_s`.
//!
//! `bench_ann_scaling` runs the full ladder (tiers from
//! `TL_BENCH_ANN_TIERS`, default `4,32,280` scaled topics ≈ 14k / 115k /
//! 1M sentences). `bench_ann_smoke` runs the smallest tier only and is the
//! CI gate: recall@10 ≥ 0.9 always, and with `TL_BENCH_ENFORCE=1` fresh
//! latencies must stay within 2× the committed baselines.

use std::time::Instant;
use tl_bench::{baseline_median, record, BenchStats};
use tl_corpus::{dated_sentences, generate, SynthConfig};
use tl_embed::{AnnConfig, AnnIndex, SentenceEmbedder};
use tl_support::rng::Rng;

const REPORT: &str = "BENCH_scaling.json";
const DIM: usize = 256;
const QUERIES: usize = 64;
const K: usize = 10;

fn enforce() -> bool {
    std::env::var("TL_BENCH_ENFORCE").as_deref() == Ok("1")
}

struct Tier {
    n: usize,
    index: AnnIndex,
    build_s: f64,
    queries: Vec<Vec<f64>>,
    /// Inclusive `(min, max)` day keys present in the corpus.
    days: (i32, i32),
}

/// Generate `topics` scaled topics, embed every sentence through the frozen
/// path, and stream it into a bulk index build — topic by topic, so the raw
/// text of a million-sentence corpus is never resident all at once.
fn build_tier(topics: usize) -> Tier {
    let embedder = SentenceEmbedder::new(DIM);
    // Stream generation → embedding → bulk build lazily: a million dense
    // f64 embeddings (~2.6 GB) must never be resident at once — the index
    // sparsifies each vector as it arrives.
    let query_texts = std::cell::RefCell::new(Vec::<String>::new());
    let min_day = std::cell::Cell::new(i32::MAX);
    let max_day = std::cell::Cell::new(i32::MIN);
    let start = Instant::now();
    let items = (0..topics)
        .flat_map(|t| {
            let ds = generate(&SynthConfig::scaled(1, 0x5CA1E ^ t as u64));
            dated_sentences(&ds.topics[0].articles, None)
        })
        .enumerate()
        .map(|(i, s)| {
            let day = s.date.days();
            min_day.set(min_day.get().min(day));
            max_day.set(max_day.get().max(day));
            let mut q = query_texts.borrow_mut();
            if i % 9973 == 0 && q.len() < QUERIES {
                q.push(s.text.clone());
            }
            (i as u64, day, embedder.embed_frozen(&s.text))
        });
    let index = AnnIndex::build(DIM, AnnConfig::default(), items);
    let build_s = start.elapsed().as_secs_f64();
    let n = index.len();
    let query_texts = query_texts.into_inner();
    let days = (min_day.get(), max_day.get());
    let queries: Vec<Vec<f64>> = query_texts
        .iter()
        .map(|t| embedder.embed_frozen(t))
        .collect();
    assert_eq!(index.len(), n);
    assert!(index.is_trained(), "every tier exceeds min_train");
    Tier {
        n,
        index,
        build_s,
        queries,
        days,
    }
}

/// Per-query wall-clock stats (median = p50) for `f` over every query.
fn per_query_stats(queries: &[Vec<f64>], mut f: impl FnMut(&[f64])) -> BenchStats {
    let mut times: Vec<f64> = queries
        .iter()
        .map(|q| {
            let start = Instant::now();
            f(q);
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite durations"));
    BenchStats {
        median: times[times.len() / 2],
        p95: times[(times.len() * 95).div_ceil(100).saturating_sub(1)],
        iters: times.len(),
    }
}

/// Run one tier: record build, latency, recall and memory rows. Returns
/// (mean recall@10, ann p50, brute p50).
fn run_tier(tier: &Tier) -> (f64, f64, f64) {
    let Tier {
        n,
        index,
        build_s,
        queries,
        days,
    } = tier;
    record(
        REPORT,
        &format!("ann/build_s/{n}"),
        &BenchStats {
            median: *build_s,
            p95: *build_s,
            iters: 1,
        },
    );
    let ann = per_query_stats(queries, |q| {
        std::hint::black_box(index.search(q, K, None));
    });
    record(REPORT, &format!("ann/query/{n}"), &ann);
    let brute = per_query_stats(queries, |q| {
        std::hint::black_box(index.search_exact(q, K, None));
    });
    record(REPORT, &format!("brute/query/{n}"), &brute);

    let mut rng = Rng::seed_from_u64(0xF17E ^ *n as u64);
    let (dmin, dmax) = *days;
    let span = (dmax - dmin).max(1);
    let filtered = per_query_stats(queries, |q| {
        let lo = dmin + rng.bounded_u64(span as u64) as i32;
        let hi = (lo + span / 12).min(dmax);
        std::hint::black_box(index.search(q, K, Some((lo, hi))));
    });
    record(REPORT, &format!("ann/filtered_query/{n}"), &filtered);

    let (mut total, mut min_recall) = (0.0f64, 1.0f64);
    for q in queries {
        let exact = index.search_exact(q, K, None);
        let approx = index.search(q, K, None);
        let hits = exact
            .iter()
            .filter(|(id, _)| approx.iter().any(|(a, _)| a == id))
            .count();
        let r = if exact.is_empty() {
            1.0
        } else {
            hits as f64 / exact.len() as f64
        };
        total += r;
        min_recall = min_recall.min(r);
    }
    let recall = total / queries.len() as f64;
    record(
        REPORT,
        &format!("ann/recall_at_10/{n}"),
        &BenchStats {
            median: recall,
            p95: min_recall,
            iters: queries.len(),
        },
    );
    record(
        REPORT,
        &format!("ann/memory_bytes/{n}"),
        &BenchStats {
            median: index.memory_bytes() as f64,
            p95: index.memory_bytes() as f64,
            iters: 1,
        },
    );
    println!(
        "tier n={n}: build {build_s:.1}s, ann p50 {:.3}ms, brute p50 {:.3}ms, recall@10 {recall:.3}, {} MB",
        ann.median * 1e3,
        brute.median * 1e3,
        index.memory_bytes() / (1 << 20)
    );
    (recall, ann.median, brute.median)
}

/// Full ladder. Prints a sublinearity summary: ANN latency must grow much
/// slower than brute force across the tiers.
#[test]
#[ignore = "benchmark (the large tier embeds ~1M sentences; minutes)"]
fn bench_ann_scaling() {
    let tiers: Vec<usize> = std::env::var("TL_BENCH_ANN_TIERS")
        .unwrap_or_else(|_| "4,32,280".into())
        .split(',')
        .map(|t| t.trim().parse().expect("TL_BENCH_ANN_TIERS: topic counts"))
        .collect();
    let mut rows: Vec<(usize, f64, f64, f64)> = Vec::new();
    for topics in tiers {
        let tier = build_tier(topics);
        let (recall, ann_p50, brute_p50) = run_tier(&tier);
        rows.push((tier.n, recall, ann_p50, brute_p50));
    }
    for (n, recall, ann_p50, brute_p50) in &rows {
        println!(
            "summary n={n}: recall@10 {recall:.3}, ann {:.3}ms, brute {:.3}ms",
            ann_p50 * 1e3,
            brute_p50 * 1e3
        );
    }
    if rows.len() >= 2 {
        let (n0, _, a0, b0) = rows[0];
        let (n1, _, a1, b1) = rows[rows.len() - 1];
        let size_ratio = n1 as f64 / n0 as f64;
        println!(
            "scaling {size_ratio:.0}x: ann {:.1}x, brute {:.1}x",
            a1 / a0,
            b1 / b0
        );
        assert!(
            a1 / a0 < b1 / b0,
            "ANN latency must scale better than brute force"
        );
    }
}

/// Thread-scaling ladder: index build wall-clock and query p50/p95 at
/// parallelism degrees 1 / 2 / 4 (`AnnConfig.threads`) over one pre-embedded
/// tier (default 32 topics ≈ 146k sentences; override the topic count with
/// `TL_BENCH_ANN_THREAD_TOPICS`). Embedding is hoisted out so the rows time
/// the index alone:
///
/// * `ann/build_s_t{T}/{n}` — bulk build (train + assign) at degree `T`,
/// * `ann/query_t{T}/{n}` — per-query latency at degree `T`.
///
/// Besides timing, the ladder re-asserts the differential: hits at every
/// degree must be bitwise identical to degree 1.
#[test]
#[ignore = "benchmark (embeds ~146k sentences; minutes)"]
fn bench_ann_threads() {
    let topics: usize = std::env::var("TL_BENCH_ANN_THREAD_TOPICS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    tl_support::pool::warm_pool();
    let embedder = SentenceEmbedder::new(DIM);
    let mut queries: Vec<Vec<f64>> = Vec::new();
    let items: Vec<(u64, i32, Vec<f64>)> = (0..topics)
        .flat_map(|t| {
            let ds = generate(&SynthConfig::scaled(1, 0x5CA1E ^ t as u64));
            dated_sentences(&ds.topics[0].articles, None)
        })
        .enumerate()
        .map(|(i, s)| {
            let v = embedder.embed_frozen(&s.text);
            if i % 9973 == 0 && queries.len() < QUERIES {
                queries.push(v.clone());
            }
            (i as u64, s.date.days(), v)
        })
        .collect();
    let n = items.len();
    println!("thread ladder: {n} sentences, {topics} topics");

    let mut reference: Option<Vec<Vec<(u64, u64)>>> = None;
    for threads in [1usize, 2, 4] {
        let cfg = AnnConfig {
            threads,
            ..AnnConfig::default()
        };
        let start = Instant::now();
        let index = AnnIndex::build(DIM, cfg, items.iter().cloned());
        let build_s = start.elapsed().as_secs_f64();
        record(
            REPORT,
            &format!("ann/build_s_t{threads}/{n}"),
            &BenchStats {
                median: build_s,
                p95: build_s,
                iters: 1,
            },
        );
        let stats = per_query_stats(&queries, |q| {
            std::hint::black_box(index.search(q, K, None));
        });
        record(REPORT, &format!("ann/query_t{threads}/{n}"), &stats);
        println!(
            "threads={threads}: build {build_s:.2}s, query p50 {:.3}ms p95 {:.3}ms",
            stats.median * 1e3,
            stats.p95 * 1e3
        );
        let bits: Vec<Vec<(u64, u64)>> = queries
            .iter()
            .map(|q| {
                index
                    .search(q, K, None)
                    .into_iter()
                    .map(|(id, s)| (id, s.to_bits()))
                    .collect()
            })
            .collect();
        match &reference {
            None => reference = Some(bits),
            Some(reference) => assert_eq!(
                &bits, reference,
                "threads={threads}: hits diverged from the serial build"
            ),
        }
    }
}

/// Smallest tier only — fast enough for CI. Always asserts the recall
/// floor; with `TL_BENCH_ENFORCE=1` also gates fresh latency medians at
/// ≤2× the committed BENCH_scaling.json baselines.
#[test]
#[ignore = "benchmark"]
fn bench_ann_smoke() {
    let tier = build_tier(4);
    let (recall, ann_p50, brute_p50) = run_tier(&tier);
    assert!(
        recall >= 0.9,
        "recall@10 = {recall:.3} below the 0.9 floor at default config"
    );
    if enforce() {
        let n = tier.n;
        let mut regressions = Vec::new();
        for (name, fresh) in [
            (format!("ann/query/{n}"), ann_p50),
            (format!("brute/query/{n}"), brute_p50),
        ] {
            let baseline = baseline_median(REPORT, &name)
                .unwrap_or_else(|| panic!("committed {REPORT} must contain {name}"));
            if fresh > 2.0 * baseline {
                regressions.push(format!(
                    "{name}: median {:.3} ms > 2x baseline {:.3} ms",
                    fresh * 1e3,
                    baseline * 1e3
                ));
            }
        }
        let recall_floor = baseline_median(REPORT, &format!("ann/recall_at_10/{n}"))
            .unwrap_or_else(|| panic!("committed {REPORT} must contain the recall row"));
        assert!(
            recall >= recall_floor.min(0.9),
            "recall@10 {recall:.3} under committed floor {recall_floor:.3}"
        );
        assert!(regressions.is_empty(), "{}", regressions.join("\n"));
    }
}
