//! **Figure 2** as a Criterion bench: generation time vs corpus size for
//! WILSON and the TILSE submodular framework. The submodular methods grow
//! quadratically with the sentence count; WILSON is near-linear.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tl_baselines::TilseBaseline;
use tl_bench::tiny_corpus;
use tl_corpus::TimelineGenerator;
use tl_wilson::{Wilson, WilsonConfig};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_scaling");
    group.sample_size(10);
    // Tiny-profile ladder: sizes that double (the Timeline17 profile's
    // minimum-articles floor would flatten small scales to one size).
    for &scale in &[2.0f64, 4.0, 8.0] {
        let corpus = tiny_corpus(scale);
        let size = corpus.sentences.len();
        group.bench_with_input(BenchmarkId::new("wilson", size), &corpus, |b, cx| {
            let m = Wilson::new(WilsonConfig::default());
            b.iter(|| black_box(m.generate(&cx.sentences, &cx.query, cx.t, cx.n)));
        });
        group.bench_with_input(BenchmarkId::new("asmds", size), &corpus, |b, cx| {
            let m = TilseBaseline::asmds();
            b.iter(|| black_box(m.generate(&cx.sentences, &cx.query, cx.t, cx.n)));
        });
        group.bench_with_input(
            BenchmarkId::new("tls_constraints", size),
            &corpus,
            |b, cx| {
                let m = TilseBaseline::tls_constraints();
                b.iter(|| black_box(m.generate(&cx.sentences, &cx.query, cx.t, cx.n)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
