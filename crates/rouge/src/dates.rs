//! Date-selection metrics: F1 (Tables 2, 3, 7) and coverage ±k (Table 3).

use tl_temporal::Date;

/// Precision/recall/F1 of a selected date set against the ground-truth set.
///
/// Exact-day matching, as in the paper ("Date selection is evaluated by f1
/// scores", §2.1).
pub fn date_f1(selected: &[Date], ground_truth: &[Date]) -> f64 {
    if selected.is_empty() || ground_truth.is_empty() {
        return 0.0;
    }
    let mut sel: Vec<Date> = selected.to_vec();
    sel.sort_unstable();
    sel.dedup();
    let mut gt: Vec<Date> = ground_truth.to_vec();
    gt.sort_unstable();
    gt.dedup();
    let matched = sel.iter().filter(|d| gt.binary_search(d).is_ok()).count() as f64;
    let p = matched / sel.len() as f64;
    let r = matched / gt.len() as f64;
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// Date coverage within ±`window` days (§2.2.2): the fraction of
/// ground-truth dates `g` for which some selected date lies in
/// `[g − window, g + window]`.
pub fn date_coverage(selected: &[Date], ground_truth: &[Date], window: u32) -> f64 {
    if ground_truth.is_empty() {
        return 0.0;
    }
    let mut sel: Vec<i32> = selected.iter().map(|d| d.days()).collect();
    sel.sort_unstable();
    let covered = ground_truth
        .iter()
        .filter(|g| {
            let day = g.days();
            // Nearest selected date via binary search.
            match sel.binary_search(&day) {
                Ok(_) => true,
                Err(pos) => {
                    let before = pos.checked_sub(1).map(|i| (day - sel[i]).unsigned_abs());
                    let after = sel.get(pos).map(|&s| (s - day).unsigned_abs());
                    before.is_some_and(|d| d <= window) || after.is_some_and(|d| d <= window)
                }
            }
        })
        .count();
    covered as f64 / ground_truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Date {
        s.parse().unwrap()
    }

    fn ds(strs: &[&str]) -> Vec<Date> {
        strs.iter().map(|s| d(s)).collect()
    }

    #[test]
    fn perfect_selection() {
        let gt = ds(&["2018-03-08", "2018-06-12"]);
        assert!((date_f1(&gt, &gt) - 1.0).abs() < 1e-12);
        assert!((date_coverage(&gt, &gt, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_selection() {
        let sel = ds(&["2018-01-01"]);
        let gt = ds(&["2018-06-12"]);
        assert_eq!(date_f1(&sel, &gt), 0.0);
        assert_eq!(date_coverage(&sel, &gt, 3), 0.0);
    }

    #[test]
    fn partial_overlap_hand_computed() {
        let sel = ds(&["2018-03-08", "2018-04-01", "2018-05-01", "2018-06-12"]);
        let gt = ds(&["2018-03-08", "2018-06-12", "2018-07-04"]);
        // matched 2; P = 2/4, R = 2/3; F1 = 2*0.5*(2/3)/(0.5+2/3) = 4/7
        assert!((date_f1(&sel, &gt) - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_window_semantics() {
        let gt = ds(&["2018-06-12"]);
        let sel = ds(&["2018-06-09"]); // 3 days away
        assert_eq!(date_coverage(&sel, &gt, 3), 1.0);
        assert_eq!(date_coverage(&sel, &gt, 2), 0.0);
        let sel_after = ds(&["2018-06-15"]); // 3 days after
        assert_eq!(date_coverage(&sel_after, &gt, 3), 1.0);
    }

    #[test]
    fn coverage_counts_fraction_of_gt() {
        let gt = ds(&["2018-01-01", "2018-02-01", "2018-03-01", "2018-04-01"]);
        let sel = ds(&["2018-01-02", "2018-03-29"]);
        // Covers 01-01 (±3) and 04-01 (±3): 2/4.
        assert!((date_coverage(&sel, &gt, 3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        let some = ds(&["2018-01-01"]);
        assert_eq!(date_f1(&[], &some), 0.0);
        assert_eq!(date_f1(&some, &[]), 0.0);
        assert_eq!(date_coverage(&[], &some, 3), 0.0);
        assert_eq!(date_coverage(&some, &[], 3), 0.0);
    }

    #[test]
    fn duplicates_deduped_in_f1() {
        let sel = ds(&["2018-06-12", "2018-06-12"]);
        let gt = ds(&["2018-06-12"]);
        assert!((date_f1(&sel, &gt) - 1.0).abs() < 1e-12);
    }

    use tl_support::qp_assert;
    use tl_support::quickprop::{check, gens};

    fn to_dates(days: &[i32]) -> Vec<Date> {
        days.iter().copied().map(Date::from_days).collect()
    }

    #[test]
    fn prop_f1_bounded() {
        let pair = (
            gens::vecs(gens::i32s(0..1000), 0..30),
            gens::vecs(gens::i32s(0..1000), 0..30),
        );
        check("f1_bounded", pair, |(sel, gt)| {
            let f = date_f1(&to_dates(sel), &to_dates(gt));
            qp_assert!((0.0..=1.0).contains(&f));
            Ok(())
        });
    }

    #[test]
    fn prop_coverage_monotone_in_window() {
        let pair = (
            gens::vecs(gens::i32s(0..300), 1..20),
            gens::vecs(gens::i32s(0..300), 1..20),
        );
        check("coverage_monotone_in_window", pair, |(sel, gt)| {
            let (sel, gt) = (to_dates(sel), to_dates(gt));
            let c0 = date_coverage(&sel, &gt, 0);
            let c3 = date_coverage(&sel, &gt, 3);
            let c10 = date_coverage(&sel, &gt, 10);
            qp_assert!(c0 <= c3 + 1e-12);
            qp_assert!(c3 <= c10 + 1e-12);
            Ok(())
        });
    }

    #[test]
    fn prop_exact_match_implies_coverage() {
        check("exact_match_implies_coverage", gens::vecs(gens::i32s(0..300), 1..20), |days| {
            let dates = to_dates(days);
            qp_assert!((date_coverage(&dates, &dates, 0) - 1.0).abs() < 1e-12);
            Ok(())
        });
    }
}
