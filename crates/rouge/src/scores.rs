//! Core ROUGE-N and ROUGE-S\* computation (Lin, 2004).
//!
//! Matching follows ROUGE-1.5.5 semantics as the paper uses it (Appendix A):
//! tokens are lower-cased and Porter-stemmed, stopwords are *kept*, and
//! n-gram overlap is clipped multiset intersection. ROUGE-S\* is skip-bigram
//! co-occurrence with unlimited gap. All three report precision, recall and
//! F1; the paper reports F1 throughout.

use tl_nlp::ngram::{intersection_size, ngrams, skip_bigrams, total, NgramCounts};
use tl_nlp::{AnalysisOptions, Analyzer};

/// Precision / recall / F-measure triple.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RougeScore {
    /// Fraction of system n-grams found in the reference.
    pub precision: f64,
    /// Fraction of reference n-grams found in the system output.
    pub recall: f64,
    /// Harmonic mean of precision and recall (β = 1, as the paper reports).
    pub f1: f64,
}

impl RougeScore {
    /// Build from raw counts.
    pub fn from_counts(matched: u64, sys_total: u64, ref_total: u64) -> Self {
        Self::from_weighted(matched as f64, sys_total as f64, ref_total as f64)
    }

    /// Build from (possibly discounted) weighted counts.
    pub fn from_weighted(matched: f64, sys_total: f64, ref_total: f64) -> Self {
        let precision = if sys_total > 0.0 {
            matched / sys_total
        } else {
            0.0
        };
        let recall = if ref_total > 0.0 {
            matched / ref_total
        } else {
            0.0
        };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        Self {
            precision,
            recall,
            f1,
        }
    }
}

/// A ROUGE scorer holding the shared token vocabulary.
///
/// The scorer interns tokens once per text; repeated evaluations over the
/// same corpus share the vocabulary. Construction is cheap.
#[derive(Debug)]
pub struct RougeScorer {
    analyzer: Analyzer,
}

impl Default for RougeScorer {
    fn default() -> Self {
        Self::new()
    }
}

impl RougeScorer {
    /// Create a scorer with ROUGE-1.5.5-style analysis (stem, keep
    /// stopwords).
    pub fn new() -> Self {
        Self {
            analyzer: Analyzer::new(AnalysisOptions::rouge()),
        }
    }

    /// Tokenize a text for ROUGE matching (public so temporal modes can
    /// pre-tokenize daily summaries).
    pub fn tokens(&mut self, text: &str) -> Vec<u32> {
        self.analyzer.analyze(text)
    }

    /// ROUGE-N between a system text and one reference text.
    pub fn rouge_n(&mut self, n: usize, system: &str, reference: &str) -> RougeScore {
        let sys = self.tokens(system);
        let rf = self.tokens(reference);
        rouge_n_tokens(n, &sys, &rf)
    }

    /// ROUGE-1 convenience.
    pub fn rouge_1(&mut self, system: &str, reference: &str) -> RougeScore {
        self.rouge_n(1, system, reference)
    }

    /// ROUGE-2 convenience.
    pub fn rouge_2(&mut self, system: &str, reference: &str) -> RougeScore {
        self.rouge_n(2, system, reference)
    }

    /// ROUGE-S\* (skip-bigram, unlimited gap) between system and reference.
    pub fn rouge_s_star(&mut self, system: &str, reference: &str) -> RougeScore {
        let sys = self.tokens(system);
        let rf = self.tokens(reference);
        let sys_sb = skip_bigrams(&sys, usize::MAX);
        let ref_sb = skip_bigrams(&rf, usize::MAX);
        RougeScore::from_counts(
            intersection_size(&sys_sb, &ref_sb),
            total(&sys_sb),
            total(&ref_sb),
        )
    }

    /// Multi-reference ROUGE-N: average the per-reference scores
    /// (ROUGE-1.5.5 `-f A` averaging, the common default).
    pub fn rouge_n_multi(&mut self, n: usize, system: &str, references: &[&str]) -> RougeScore {
        if references.is_empty() {
            return RougeScore::default();
        }
        let mut acc = RougeScore::default();
        for r in references {
            let s = self.rouge_n(n, system, r);
            acc.precision += s.precision;
            acc.recall += s.recall;
            acc.f1 += s.f1;
        }
        let k = references.len() as f64;
        RougeScore {
            precision: acc.precision / k,
            recall: acc.recall / k,
            f1: acc.f1 / k,
        }
    }
}

/// ROUGE-N over pre-tokenized inputs.
pub fn rouge_n_tokens(n: usize, system: &[u32], reference: &[u32]) -> RougeScore {
    match n {
        1 => score_ngrams::<1>(system, reference),
        2 => score_ngrams::<2>(system, reference),
        3 => score_ngrams::<3>(system, reference),
        4 => score_ngrams::<4>(system, reference),
        _ => panic!("ROUGE-N supported for n in 1..=4, got {n}"),
    }
}

fn score_ngrams<const N: usize>(system: &[u32], reference: &[u32]) -> RougeScore {
    let sys: NgramCounts<N> = ngrams(system);
    let rf: NgramCounts<N> = ngrams(reference);
    RougeScore::from_counts(intersection_size(&sys, &rf), total(&sys), total(&rf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_score_one() {
        let mut r = RougeScorer::new();
        let s = r.rouge_1(
            "the summit took place in june",
            "the summit took place in june",
        );
        assert!((s.f1 - 1.0).abs() < 1e-12);
        let s2 = r.rouge_2(
            "the summit took place in june",
            "the summit took place in june",
        );
        assert!((s2.f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_texts_score_zero() {
        let mut r = RougeScorer::new();
        let s = r.rouge_1("alpha beta gamma", "delta epsilon zeta");
        assert_eq!(s.f1, 0.0);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 0.0);
    }

    #[test]
    fn hand_computed_rouge_1() {
        // sys: "the cat sat" -> [the, cat, sat]
        // ref: "the cat ate fish" -> [the, cat, ate, fish]
        // match = 2, P = 2/3, R = 2/4.
        let mut r = RougeScorer::new();
        let s = r.rouge_1("the cat sat", "the cat ate fish");
        assert!((s.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.recall - 0.5).abs() < 1e-12);
        let f = 2.0 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5);
        assert!((s.f1 - f).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_rouge_2() {
        // sys bigrams: (the cat)(cat sat); ref bigrams: (the cat)(cat ate)(ate fish)
        // match = 1, P = 1/2, R = 1/3.
        let mut r = RougeScorer::new();
        let s = r.rouge_2("the cat sat", "the cat ate fish");
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert!((s.recall - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clipping_prevents_overcount() {
        // sys repeats "kim" three times, ref has it once: clipped match = 1.
        let mut r = RougeScorer::new();
        let s = r.rouge_1("kim kim kim", "kim spoke");
        assert!((s.precision - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stemming_matches_inflections() {
        let mut r = RougeScorer::new();
        // "negotiations" and "negotiation" must match after stemming.
        let s = r.rouge_1("negotiations continued", "negotiation continues");
        assert!(s.f1 > 0.9, "{s:?}");
    }

    #[test]
    fn skip_bigram_hand_case() {
        // sys "a b c": pairs ab ac bc. ref "a c b": pairs ac ab cb.
        // match = {ab, ac} = 2; totals 3 and 3.
        let mut r = RougeScorer::new();
        let s = r.rouge_s_star("alpha beta gamma", "alpha gamma beta");
        assert!((s.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.recall - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        let mut r = RougeScorer::new();
        assert_eq!(r.rouge_1("", "reference text").f1, 0.0);
        assert_eq!(r.rouge_1("system text", "").f1, 0.0);
        assert_eq!(r.rouge_2("one", "one").f1, 0.0); // too short for bigrams
        assert_eq!(r.rouge_s_star("", "").f1, 0.0);
    }

    #[test]
    fn multi_reference_average() {
        let mut r = RougeScorer::new();
        let perfect = r.rouge_n_multi(1, "alpha beta", &["alpha beta", "gamma delta"]);
        let single = r.rouge_n(1, "alpha beta", "alpha beta");
        assert!((perfect.f1 - single.f1 / 2.0).abs() < 1e-12);
        assert_eq!(r.rouge_n_multi(1, "alpha", &[]).f1, 0.0);
    }

    #[test]
    fn case_insensitive() {
        let mut r = RougeScorer::new();
        let s = r.rouge_1("TRUMP MET KIM", "trump met kim");
        assert!((s.f1 - 1.0).abs() < 1e-12);
    }

    use tl_support::qp_assert;
    use tl_support::quickprop::{check, gens, Gen};

    fn words_gen(max: usize) -> impl Gen<Value = Vec<String>> {
        gens::vecs(gens::lowercase(2..=6), 1..max)
    }

    #[test]
    fn prop_f1_bounded_and_symmetric_on_identity() {
        check("f1_bounded_and_symmetric_on_identity", words_gen(20), |words| {
            let text = words.join(" ");
            let mut r = RougeScorer::new();
            let s = r.rouge_1(&text, &text);
            qp_assert!((s.f1 - 1.0).abs() < 1e-9);
            Ok(())
        });
    }

    #[test]
    fn prop_precision_recall_swap_on_reversal() {
        check(
            "precision_recall_swap_on_reversal",
            (words_gen(15), words_gen(15)),
            |(a, b)| {
                let (ta, tb) = (a.join(" "), b.join(" "));
                let mut r = RougeScorer::new();
                let ab = r.rouge_1(&ta, &tb);
                let ba = r.rouge_1(&tb, &ta);
                qp_assert!((ab.precision - ba.recall).abs() < 1e-9);
                qp_assert!((ab.recall - ba.precision).abs() < 1e-9);
                qp_assert!((ab.f1 - ba.f1).abs() < 1e-9);
                Ok(())
            },
        );
    }

    #[test]
    fn prop_scores_in_unit_interval() {
        let texts = (
            gens::vecs(gens::lowercase(2..=5), 0..15),
            gens::vecs(gens::lowercase(2..=5), 0..15),
        );
        check("scores_in_unit_interval", texts, |(a, b)| {
            let (ta, tb) = (a.join(" "), b.join(" "));
            let mut r = RougeScorer::new();
            for s in [r.rouge_1(&ta, &tb), r.rouge_2(&ta, &tb), r.rouge_s_star(&ta, &tb)] {
                qp_assert!((0.0..=1.0 + 1e-9).contains(&s.precision));
                qp_assert!((0.0..=1.0 + 1e-9).contains(&s.recall));
                qp_assert!((0.0..=1.0 + 1e-9).contains(&s.f1));
            }
            Ok(())
        });
    }
}
