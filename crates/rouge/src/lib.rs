//! Evaluation substrate for the WILSON reproduction.
//!
//! Re-implements, from the primary sources, every metric the paper reports:
//!
//! * **ROUGE-N** and **ROUGE-S\*** F1 (Lin 2004; §3.1.4) — [`scores`],
//! * **time-sensitive ROUGE** in the three modes of Martschat & Markert
//!   2017 used in Table 7: *concat*, *agreement* and *align+ m:1* with
//!   date-distance discounting — [`temporal`],
//! * **date-selection F1** and **date coverage ±k** (Table 3) — [`dates`],
//! * the **approximate randomization significance test** (Noreen 1989)
//!   behind the ★/† markers of Table 7 — [`significance`].
//!
//! A machine timeline is represented throughout as a chronologically sorted
//! slice of `(Date, Vec<String>)` daily summaries, matching Definition 1 of
//! the paper.
#![warn(missing_docs)]

pub mod dates;
pub mod scores;
pub mod significance;
pub mod temporal;

pub use dates::{date_coverage, date_f1};
pub use scores::{RougeScore, RougeScorer};
pub use significance::approximate_randomization;
pub use temporal::{TimelineRouge, TimelineRougeMode};

/// One dated daily summary: the date plus its selected sentences.
pub type DatedSummary = (tl_temporal::Date, Vec<String>);
