//! Approximate randomization significance test (Noreen, 1989).
//!
//! The paper tests WILSON's improvements over ASMDS / TLSConstraints with an
//! approximate randomization test at p = 0.05 (§3.1.4, Table 7). Given
//! paired per-timeline scores of two systems, the test asks: if system
//! labels were assigned at random per timeline, how often would the absolute
//! difference of means be at least as large as observed?

use tl_support::rng::Rng;

/// Result of an approximate randomization test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignificanceResult {
    /// Observed difference of means (a − b).
    pub observed_diff: f64,
    /// Two-sided p-value estimate.
    pub p_value: f64,
    /// Number of shuffles performed.
    pub trials: usize,
}

impl SignificanceResult {
    /// Is the difference significant at the given level?
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Run the approximate randomization test on paired scores.
///
/// `a` and `b` must have equal length (scores of the two systems on the same
/// evaluation unit — per-timeline ROUGE scores in the paper). With `trials`
/// random label swaps, the p-value is `(1 + #{|diff_perm| ≥ |diff_obs|}) /
/// (1 + trials)` (add-one smoothing keeps the estimate conservative).
pub fn approximate_randomization(
    a: &[f64],
    b: &[f64],
    trials: usize,
    seed: u64,
) -> SignificanceResult {
    assert_eq!(a.len(), b.len(), "paired samples must have equal length");
    let n = a.len();
    let observed_diff = mean(a) - mean(b);
    if n == 0 || trials == 0 {
        return SignificanceResult {
            observed_diff,
            p_value: 1.0,
            trials,
        };
    }
    let mut rng = Rng::seed_from_u64(seed);
    let mut at_least = 0usize;
    let mut pa = vec![0.0; n];
    let mut pb = vec![0.0; n];
    for _ in 0..trials {
        for i in 0..n {
            if rng.gen_bool(0.5) {
                pa[i] = b[i];
                pb[i] = a[i];
            } else {
                pa[i] = a[i];
                pb[i] = b[i];
            }
        }
        let diff = mean(&pa) - mean(&pb);
        if diff.abs() >= observed_diff.abs() - 1e-15 {
            at_least += 1;
        }
    }
    SignificanceResult {
        observed_diff,
        p_value: (1 + at_least) as f64 / (1 + trials) as f64,
        trials,
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_systems_not_significant() {
        let a = vec![0.3, 0.4, 0.5, 0.35, 0.42];
        let r = approximate_randomization(&a, &a, 1000, 7);
        assert_eq!(r.observed_diff, 0.0);
        assert!(r.p_value > 0.9, "p = {}", r.p_value);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn clearly_better_system_is_significant() {
        // System a dominates b on every one of 20 units by a wide margin.
        let a: Vec<f64> = (0..20).map(|i| 0.5 + 0.01 * i as f64).collect();
        let b: Vec<f64> = (0..20).map(|i| 0.1 + 0.01 * i as f64).collect();
        let r = approximate_randomization(&a, &b, 2000, 7);
        assert!(r.observed_diff > 0.39);
        assert!(r.significant_at(0.05), "p = {}", r.p_value);
    }

    #[test]
    fn tiny_noise_difference_not_significant() {
        let a = vec![0.30, 0.41, 0.52, 0.33, 0.47, 0.38];
        let b = vec![0.31, 0.40, 0.52, 0.34, 0.46, 0.38];
        let r = approximate_randomization(&a, &b, 2000, 7);
        assert!(!r.significant_at(0.05), "p = {}", r.p_value);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = vec![0.5, 0.6, 0.7];
        let b = vec![0.4, 0.5, 0.9];
        let r1 = approximate_randomization(&a, &b, 500, 42);
        let r2 = approximate_randomization(&a, &b, 500, 42);
        assert_eq!(r1, r2);
    }

    #[test]
    fn empty_input() {
        let r = approximate_randomization(&[], &[], 100, 1);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        approximate_randomization(&[1.0], &[1.0, 2.0], 10, 1);
    }

    #[test]
    fn p_value_in_unit_interval() {
        let a = vec![0.9, 0.1, 0.5];
        let b = vec![0.2, 0.8, 0.5];
        let r = approximate_randomization(&a, &b, 333, 9);
        assert!(r.p_value > 0.0 && r.p_value <= 1.0);
    }
}
