//! Time-sensitive ROUGE for timelines (Martschat & Markert, 2017).
//!
//! The paper's Table 7 reports three evaluation modes against the TILSE
//! evaluation library:
//!
//! * **concat** — ignore dates entirely: concatenate all daily summaries of
//!   the system and of the reference and run plain ROUGE,
//! * **agreement** — n-gram matches count only between summaries *on the
//!   same date*; precision is normalized by all system n-grams and recall
//!   by all reference n-grams, so writing on a wrong date costs precision
//!   and missing a reference date costs recall,
//! * **align+ m:1** — each system day is aligned to its best-matching
//!   reference day (several system days may map to the same reference day),
//!   and the matched counts are discounted by `1 / (1 + |d_sys − d_ref|)`,
//!   so near-miss dates earn partial credit.
//!
//! All modes are computed for ROUGE-1 and ROUGE-2 (micro-averaged counts,
//! as in the tilse library).

use crate::scores::{RougeScore, RougeScorer};
use crate::DatedSummary;
use tl_nlp::ngram::{intersection_size, ngrams, total, NgramCounts};

/// Which time-sensitive mode to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimelineRougeMode {
    /// Date-agnostic concatenation.
    Concat,
    /// Same-date matching only.
    Agreement,
    /// Best-reference-day alignment (m:1) with date-distance discount.
    AlignMto1,
    /// One-to-one alignment: each reference day may be claimed by at most
    /// one system day (greedy on discounted match, the tilse library's
    /// second alignment flavour). Never exceeds [`Self::AlignMto1`].
    Align1to1,
}

/// Evaluator for timeline-level ROUGE.
#[derive(Debug, Default)]
pub struct TimelineRouge {
    scorer: RougeScorer,
}

/// Tokenized daily summaries (one token vector per day).
struct TokenizedTimeline {
    days: Vec<(i32, Vec<u32>)>, // (epoch day, tokens)
}

impl TimelineRouge {
    /// Create an evaluator.
    pub fn new() -> Self {
        Self::default()
    }

    fn tokenize(&mut self, tl: &[DatedSummary]) -> TokenizedTimeline {
        let days = tl
            .iter()
            .map(|(d, sents)| {
                let joined = sents.join(" ");
                (d.days(), self.scorer.tokens(&joined))
            })
            .collect();
        TokenizedTimeline { days }
    }

    /// Compute ROUGE-N (n = 1 or 2) in the given mode.
    pub fn rouge_n(
        &mut self,
        n: usize,
        mode: TimelineRougeMode,
        system: &[DatedSummary],
        reference: &[DatedSummary],
    ) -> RougeScore {
        let sys = self.tokenize(system);
        let rf = self.tokenize(reference);
        match n {
            1 => mode_dispatch::<1>(mode, &sys, &rf),
            2 => mode_dispatch::<2>(mode, &sys, &rf),
            _ => panic!("timeline ROUGE supported for n in {{1, 2}}, got {n}"),
        }
    }

    /// ROUGE-S\* on the concatenation (used for Tables 2, 3, 5, 6).
    pub fn rouge_s_star_concat(
        &mut self,
        system: &[DatedSummary],
        reference: &[DatedSummary],
    ) -> RougeScore {
        let sys_text = concat_text(system);
        let ref_text = concat_text(reference);
        self.scorer.rouge_s_star(&sys_text, &ref_text)
    }
}

fn concat_text(tl: &[DatedSummary]) -> String {
    tl.iter()
        .map(|(_, sents)| sents.join(" "))
        .collect::<Vec<_>>()
        .join(" ")
}

fn mode_dispatch<const N: usize>(
    mode: TimelineRougeMode,
    sys: &TokenizedTimeline,
    rf: &TokenizedTimeline,
) -> RougeScore {
    match mode {
        TimelineRougeMode::Concat => concat_mode::<N>(sys, rf),
        TimelineRougeMode::Agreement => agreement_mode::<N>(sys, rf),
        TimelineRougeMode::AlignMto1 => align_mode::<N>(sys, rf),
        TimelineRougeMode::Align1to1 => align_1to1_mode::<N>(sys, rf),
    }
}

fn day_ngrams<const N: usize>(tl: &TokenizedTimeline) -> Vec<(i32, NgramCounts<N>)> {
    tl.days
        .iter()
        .map(|(d, toks)| (*d, ngrams::<N>(toks)))
        .collect()
}

fn concat_mode<const N: usize>(sys: &TokenizedTimeline, rf: &TokenizedTimeline) -> RougeScore {
    // Concatenate token streams. Joining at day boundaries creates one
    // spurious cross-boundary n-gram per boundary — the reference
    // implementation concatenates text the same way, so we match that.
    let sys_tokens: Vec<u32> = sys
        .days
        .iter()
        .flat_map(|(_, t)| t.iter().copied())
        .collect();
    let ref_tokens: Vec<u32> = rf
        .days
        .iter()
        .flat_map(|(_, t)| t.iter().copied())
        .collect();
    let s: NgramCounts<N> = ngrams(&sys_tokens);
    let r: NgramCounts<N> = ngrams(&ref_tokens);
    RougeScore::from_counts(intersection_size(&s, &r), total(&s), total(&r))
}

fn agreement_mode<const N: usize>(sys: &TokenizedTimeline, rf: &TokenizedTimeline) -> RougeScore {
    let sys_days = day_ngrams::<N>(sys);
    let ref_days = day_ngrams::<N>(rf);
    let sys_total: u64 = sys_days.iter().map(|(_, c)| total(c)).sum();
    let ref_total: u64 = ref_days.iter().map(|(_, c)| total(c)).sum();
    let mut matched = 0u64;
    for (d, sc) in &sys_days {
        if let Some((_, rc)) = ref_days.iter().find(|(rd, _)| rd == d) {
            matched += intersection_size(sc, rc);
        }
    }
    RougeScore::from_counts(matched, sys_total, ref_total)
}

fn align_mode<const N: usize>(sys: &TokenizedTimeline, rf: &TokenizedTimeline) -> RougeScore {
    let sys_days = day_ngrams::<N>(sys);
    let ref_days = day_ngrams::<N>(rf);
    let sys_total: u64 = sys_days.iter().map(|(_, c)| total(c)).sum();
    let ref_total: u64 = ref_days.iter().map(|(_, c)| total(c)).sum();
    let mut matched = 0.0f64;
    for (d, sc) in &sys_days {
        // Align this system day to the reference day maximizing the
        // distance-discounted match; m:1 — several system days may pick the
        // same reference day.
        let mut best = 0.0f64;
        for (rd, rc) in &ref_days {
            let discount = 1.0 / (1.0 + (d - rd).abs() as f64);
            let m = intersection_size(sc, rc) as f64 * discount;
            if m > best {
                best = m;
            }
        }
        matched += best;
    }
    RougeScore::from_weighted(matched, sys_total as f64, ref_total as f64)
}

fn align_1to1_mode<const N: usize>(sys: &TokenizedTimeline, rf: &TokenizedTimeline) -> RougeScore {
    let sys_days = day_ngrams::<N>(sys);
    let ref_days = day_ngrams::<N>(rf);
    let sys_total: u64 = sys_days.iter().map(|(_, c)| total(c)).sum();
    let ref_total: u64 = ref_days.iter().map(|(_, c)| total(c)).sum();
    // All candidate (sys, ref) pairs with their discounted match, assigned
    // greedily best-first so each side is used at most once — the standard
    // greedy 1:1 matching (optimal assignment is overkill for this metric
    // and tilse also matches greedily).
    let mut pairs: Vec<(f64, usize, usize)> = Vec::new();
    for (i, (d, sc)) in sys_days.iter().enumerate() {
        for (j, (rd, rc)) in ref_days.iter().enumerate() {
            let discount = 1.0 / (1.0 + (d - rd).abs() as f64);
            let m = intersection_size(sc, rc) as f64 * discount;
            if m > 0.0 {
                pairs.push((m, i, j));
            }
        }
    }
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut sys_used = vec![false; sys_days.len()];
    let mut ref_used = vec![false; ref_days.len()];
    let mut matched = 0.0;
    for (m, i, j) in pairs {
        if !sys_used[i] && !ref_used[j] {
            sys_used[i] = true;
            ref_used[j] = true;
            matched += m;
        }
    }
    RougeScore::from_weighted(matched, sys_total as f64, ref_total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tl_temporal::Date;

    fn d(s: &str) -> Date {
        s.parse().unwrap()
    }

    fn tl(entries: &[(&str, &[&str])]) -> Vec<DatedSummary> {
        entries
            .iter()
            .map(|(date, sents)| (d(date), sents.iter().map(|s| s.to_string()).collect()))
            .collect()
    }

    #[test]
    fn identical_timelines_perfect_everywhere() {
        let t = tl(&[
            ("2018-03-08", &["Trump agrees to meet Kim for talks."]),
            ("2018-06-12", &["The summit takes place in Singapore."]),
        ]);
        let mut ev = TimelineRouge::new();
        for mode in [
            TimelineRougeMode::Concat,
            TimelineRougeMode::Agreement,
            TimelineRougeMode::AlignMto1,
        ] {
            let s = ev.rouge_n(1, mode, &t, &t);
            assert!((s.f1 - 1.0).abs() < 1e-9, "{mode:?}: {s:?}");
        }
    }

    #[test]
    fn agreement_zero_when_dates_disjoint() {
        let sys = tl(&[("2018-03-08", &["the summit talks happened"])]);
        let rf = tl(&[("2018-06-12", &["the summit talks happened"])]);
        let mut ev = TimelineRouge::new();
        let agr = ev.rouge_n(1, TimelineRougeMode::Agreement, &sys, &rf);
        assert_eq!(agr.f1, 0.0);
        // Concat ignores the date difference entirely.
        let cat = ev.rouge_n(1, TimelineRougeMode::Concat, &sys, &rf);
        assert!((cat.f1 - 1.0).abs() < 1e-9);
        // Alignment gives discounted credit: distance 96 days.
        let al = ev.rouge_n(1, TimelineRougeMode::AlignMto1, &sys, &rf);
        assert!(al.f1 > 0.0 && al.f1 < cat.f1);
    }

    #[test]
    fn align_discount_value() {
        // One day off: discount = 1/2. 4 unigrams all matching.
        let sys = tl(&[("2018-06-11", &["alpha beta gamma delta"])]);
        let rf = tl(&[("2018-06-12", &["alpha beta gamma delta"])]);
        let mut ev = TimelineRouge::new();
        let al = ev.rouge_n(1, TimelineRougeMode::AlignMto1, &sys, &rf);
        assert!((al.precision - 0.5).abs() < 1e-9);
        assert!((al.recall - 0.5).abs() < 1e-9);
    }

    #[test]
    fn align_at_least_agreement() {
        // Alignment with discount 1 on same dates reduces to agreement.
        let sys = tl(&[
            ("2018-03-08", &["trump kim talks"]),
            ("2018-05-24", &["summit canceled abruptly"]),
        ]);
        let rf = tl(&[
            ("2018-03-08", &["kim requested talks"]),
            ("2018-06-12", &["summit happened in singapore"]),
        ]);
        let mut ev = TimelineRouge::new();
        let agr = ev.rouge_n(1, TimelineRougeMode::Agreement, &sys, &rf);
        let al = ev.rouge_n(1, TimelineRougeMode::AlignMto1, &sys, &rf);
        assert!(al.f1 >= agr.f1 - 1e-12, "{al:?} vs {agr:?}");
    }

    #[test]
    fn wrong_date_costs_precision_in_agreement() {
        // System writes perfect content on the right date plus noise on a
        // wrong date: recall stays 1, precision drops.
        let rf = tl(&[("2018-06-12", &["summit happened"])]);
        let sys = tl(&[
            ("2018-06-12", &["summit happened"]),
            ("2018-06-13", &["irrelevant chatter words"]),
        ]);
        let mut ev = TimelineRouge::new();
        let agr = ev.rouge_n(1, TimelineRougeMode::Agreement, &sys, &rf);
        assert!((agr.recall - 1.0).abs() < 1e-9);
        assert!(agr.precision < 1.0);
    }

    #[test]
    fn rouge2_concat_on_timelines() {
        let sys = tl(&[("2018-06-12", &["the historic summit took place"])]);
        let rf = tl(&[("2018-06-12", &["the historic summit was held"])]);
        let mut ev = TimelineRouge::new();
        let s = ev.rouge_n(2, TimelineRougeMode::Concat, &sys, &rf);
        // sys bigrams: (the historic)(historic summit)(summit took)(took place)
        // ref bigrams: (the historic)(historic summit)(summit was)(was held)
        // match 2, P=R=1/2.
        assert!((s.precision - 0.5).abs() < 1e-9);
        assert!((s.recall - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_timelines() {
        let mut ev = TimelineRouge::new();
        let t = tl(&[("2018-06-12", &["summit"])]);
        for mode in [
            TimelineRougeMode::Concat,
            TimelineRougeMode::Agreement,
            TimelineRougeMode::AlignMto1,
        ] {
            assert_eq!(ev.rouge_n(1, mode, &[], &t).f1, 0.0);
            assert_eq!(ev.rouge_n(1, mode, &t, &[]).f1, 0.0);
            assert_eq!(ev.rouge_n(1, mode, &[], &[]).f1, 0.0);
        }
    }

    #[test]
    fn align_1to1_never_exceeds_m_to_1() {
        let sys = tl(&[
            ("2018-03-08", &["summit talks announced"]),
            ("2018-03-09", &["summit talks announced again"]),
        ]);
        let rf = tl(&[("2018-03-08", &["summit talks announced"])]);
        let mut ev = TimelineRouge::new();
        let m = ev.rouge_n(1, TimelineRougeMode::AlignMto1, &sys, &rf);
        let one = ev.rouge_n(1, TimelineRougeMode::Align1to1, &sys, &rf);
        assert!(one.f1 <= m.f1 + 1e-12, "{one:?} vs {m:?}");
        // Both system days would align to the same reference day under m:1;
        // under 1:1 only one may claim it.
        assert!(one.f1 < m.f1);
    }

    #[test]
    fn align_1to1_identical_is_perfect() {
        let t = tl(&[
            ("2018-03-08", &["trump agrees to meet kim"]),
            ("2018-06-12", &["the summit takes place"]),
        ]);
        let mut ev = TimelineRouge::new();
        let s = ev.rouge_n(1, TimelineRougeMode::Align1to1, &t, &t);
        assert!((s.f1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn s_star_concat() {
        let sys = tl(&[("2018-06-12", &["alpha beta gamma"])]);
        let rf = tl(&[("2018-06-12", &["alpha gamma beta"])]);
        let mut ev = TimelineRouge::new();
        let s = ev.rouge_s_star_concat(&sys, &rf);
        assert!((s.precision - 2.0 / 3.0).abs() < 1e-9);
    }
}
