//! A compact weighted directed graph.
//!
//! Built incrementally with [`DiGraph::add_edge`], then compiled on demand
//! into a CSR (compressed sparse row) adjacency used by the PageRank kernel.
//! Parallel edges are merged by summing weights, matching NetworkX's
//! behaviour when the paper's Python implementation adds repeated
//! `(date_i, date_j)` references with accumulated weights.

/// Node index type.
pub type NodeId = usize;

/// A weighted directed graph with dense `usize` node ids `0..n`.
#[derive(Debug, Clone, Default)]
pub struct DiGraph {
    num_nodes: usize,
    /// Edge list as (src, dst, weight); compiled lazily.
    edges: Vec<(NodeId, NodeId, f64)>,
}

/// CSR view produced by [`DiGraph::compile`].
#[derive(Debug, Clone)]
pub struct Csr {
    /// Row offsets, length `n + 1`.
    pub offsets: Vec<usize>,
    /// Column (destination) indices, grouped by source.
    pub targets: Vec<NodeId>,
    /// Edge weights parallel to `targets`.
    pub weights: Vec<f64>,
    /// Total outgoing weight per node.
    pub out_weight: Vec<f64>,
}

impl DiGraph {
    /// Create a graph with `num_nodes` isolated nodes.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges added (before parallel-edge merging).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The raw edge list `(src, dst, weight)` in insertion order (before
    /// parallel-edge merging) — equivalence tests compare graphs built by
    /// different construction strategies edge-for-edge.
    pub fn edges(&self) -> &[(NodeId, NodeId, f64)] {
        &self.edges
    }

    /// Ensure the graph has at least `n` nodes.
    pub fn grow_to(&mut self, n: usize) {
        self.num_nodes = self.num_nodes.max(n);
    }

    /// Add a directed edge `src → dst` with `weight`.
    ///
    /// Panics if either endpoint is out of range or the weight is not finite
    /// and non-negative — PageRank requires a sub-stochastic matrix.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: f64) {
        assert!(src < self.num_nodes, "src {src} out of range");
        assert!(dst < self.num_nodes, "dst {dst} out of range");
        assert!(
            weight.is_finite() && weight >= 0.0,
            "edge weight must be finite and non-negative, got {weight}"
        );
        self.edges.push((src, dst, weight));
    }

    /// Compile to CSR, merging parallel edges by summing their weights and
    /// dropping zero-weight edges.
    pub fn compile(&self) -> Csr {
        let n = self.num_nodes;
        let mut edges = self.edges.clone();
        edges.sort_unstable_by_key(|a| (a.0, a.1));
        // Merge parallel edges.
        let mut merged: Vec<(NodeId, NodeId, f64)> = Vec::with_capacity(edges.len());
        for (s, d, w) in edges {
            if w == 0.0 {
                continue;
            }
            match merged.last_mut() {
                Some(last) if last.0 == s && last.1 == d => last.2 += w,
                _ => merged.push((s, d, w)),
            }
        }
        let mut offsets = vec![0usize; n + 1];
        for &(s, _, _) in &merged {
            offsets[s + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = Vec::with_capacity(merged.len());
        let mut weights = Vec::with_capacity(merged.len());
        let mut out_weight = vec![0.0f64; n];
        for (s, d, w) in merged {
            targets.push(d);
            weights.push(w);
            out_weight[s] += w;
        }
        Csr {
            offsets,
            targets,
            weights,
            out_weight,
        }
    }
}

impl Csr {
    /// Outgoing `(target, weight)` pairs of `node`.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let lo = self.offsets[node];
        let hi = self.offsets[node + 1];
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_compiles() {
        let g = DiGraph::new(0);
        let c = g.compile();
        assert_eq!(c.num_nodes(), 0);
        assert!(c.targets.is_empty());
    }

    #[test]
    fn parallel_edges_merge() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 1, 2.5);
        let c = g.compile();
        let out: Vec<_> = c.out_edges(0).collect();
        assert_eq!(out, [(1, 3.5)]);
        assert_eq!(c.out_weight[0], 3.5);
        assert_eq!(c.out_weight[1], 0.0);
    }

    #[test]
    fn zero_weight_edges_dropped() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, 0.0);
        let c = g.compile();
        assert_eq!(c.out_edges(0).count(), 0);
    }

    #[test]
    fn csr_layout() {
        let mut g = DiGraph::new(3);
        g.add_edge(2, 0, 1.0);
        g.add_edge(0, 2, 4.0);
        g.add_edge(0, 1, 3.0);
        let c = g.compile();
        assert_eq!(c.out_edges(0).collect::<Vec<_>>(), [(1, 3.0), (2, 4.0)]);
        assert_eq!(c.out_edges(1).count(), 0);
        assert_eq!(c.out_edges(2).collect::<Vec<_>>(), [(0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_bounds_checked() {
        let mut g = DiGraph::new(1);
        g.add_edge(0, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, -1.0);
    }

    #[test]
    fn grow_to_expands() {
        let mut g = DiGraph::new(1);
        g.grow_to(5);
        assert_eq!(g.num_nodes(), 5);
        g.grow_to(2); // never shrinks
        assert_eq!(g.num_nodes(), 5);
    }
}
