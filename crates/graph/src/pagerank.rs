//! PageRank and Personalized PageRank by power iteration.
//!
//! Semantics follow `networkx.pagerank`, which is what the paper's reference
//! implementation calls (Appendix A, damping α = 0.85):
//!
//! * transition probability from `u` to `v` is `w(u,v) / Σ_x w(u,x)`,
//! * dangling nodes (no out-edges) distribute their rank over the
//!   personalization vector,
//! * the restart ("teleport") distribution *is* the personalization vector —
//!   uniform for plain PageRank, recency-weighted `α^{−dᵢ}` for WILSON's
//!   recency adjustment (§2.2.1),
//! * iteration stops when the L1 change falls below `n · tol`.

use crate::digraph::DiGraph;

/// Configuration for the power iteration.
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Damping factor (probability of following an edge). NetworkX default.
    pub damping: f64,
    /// Per-node L1 convergence tolerance (NetworkX stops at `err < n·tol`).
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            tol: 1e-10,
            max_iter: 200,
        }
    }
}

/// Plain PageRank with a uniform restart distribution.
pub fn pagerank(graph: &DiGraph, config: &PageRankConfig) -> Vec<f64> {
    let n = graph.num_nodes();
    personalized_pagerank(graph, &vec![1.0; n], config)
}

/// Personalized PageRank: the restart distribution is `personalization`
/// normalized to sum 1. Panics if the vector length mismatches the node
/// count or its sum is not positive.
pub fn personalized_pagerank(
    graph: &DiGraph,
    personalization: &[f64],
    config: &PageRankConfig,
) -> Vec<f64> {
    let n = graph.num_nodes();
    assert_eq!(
        personalization.len(),
        n,
        "personalization length must equal node count"
    );
    if n == 0 {
        return Vec::new();
    }
    let psum: f64 = personalization.iter().sum();
    assert!(
        psum > 0.0 && personalization.iter().all(|&p| p >= 0.0 && p.is_finite()),
        "personalization must be non-negative with positive sum"
    );
    let restart: Vec<f64> = personalization.iter().map(|&p| p / psum).collect();

    let csr = graph.compile();
    let d = config.damping;
    let mut rank = restart.clone();
    let mut next = vec![0.0f64; n];

    for _ in 0..config.max_iter {
        // Mass from dangling nodes is redistributed via the restart vector.
        let dangling_mass: f64 = (0..n)
            .filter(|&u| csr.out_weight[u] == 0.0)
            .map(|u| rank[u])
            .sum();
        for (i, nx) in next.iter_mut().enumerate() {
            *nx = (1.0 - d + d * dangling_mass) * restart[i];
        }
        #[allow(clippy::needless_range_loop)] // u indexes rank, out_weight and out_edges
        for u in 0..n {
            let ow = csr.out_weight[u];
            if ow == 0.0 {
                continue;
            }
            let contrib = d * rank[u] / ow;
            for (v, w) in csr.out_edges(u) {
                next[v] += contrib * w;
            }
        }
        let err: f64 = rank
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut rank, &mut next);
        if err < (n as f64) * config.tol {
            break;
        }
    }
    rank
}

/// Indices of the top-`k` nodes by score, descending, ties broken by lower
/// index (deterministic).
pub fn top_k(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} vs {b}");
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new(0);
        assert!(pagerank(&g, &PageRankConfig::default()).is_empty());
    }

    #[test]
    fn single_node_gets_all_rank() {
        let g = DiGraph::new(1);
        let r = pagerank(&g, &PageRankConfig::default());
        assert_close(r[0], 1.0, 1e-9);
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let mut g = DiGraph::new(4);
        for i in 0..4 {
            g.add_edge(i, (i + 1) % 4, 1.0);
        }
        let r = pagerank(&g, &PageRankConfig::default());
        for &x in &r {
            assert_close(x, 0.25, 1e-9);
        }
    }

    #[test]
    fn star_center_dominates() {
        // 1,2,3 all point at 0.
        let mut g = DiGraph::new(4);
        for i in 1..4 {
            g.add_edge(i, 0, 1.0);
        }
        let r = pagerank(&g, &PageRankConfig::default());
        assert!(r[0] > r[1]);
        assert_close(r[1], r[2], 1e-12);
        assert_close(r[2], r[3], 1e-12);
    }

    #[test]
    fn two_node_analytic() {
        // 0 -> 1 only. Analytic solution with dangling node 1:
        // r0 = (1-d)/2 + d*m/2 where m = r1 (dangling) ... solve by iteration
        // against the independently computed NetworkX value.
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, 1.0);
        let r = pagerank(&g, &PageRankConfig::default());
        // networkx.pagerank(nx.DiGraph([(0,1)])) == {0: 0.35043..., 1: 0.64956...}
        assert_close(r[0], 0.350877, 1e-4);
        assert_close(r[1], 0.649122, 1e-4);
    }

    #[test]
    fn weights_shift_rank() {
        // 0 sends 90% of its weight to 1, 10% to 2.
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 9.0);
        g.add_edge(0, 2, 1.0);
        let r = pagerank(&g, &PageRankConfig::default());
        assert!(r[1] > r[2]);
    }

    #[test]
    fn personalization_biases_restart() {
        // Disconnected nodes: rank equals the normalized personalization.
        let g = DiGraph::new(3);
        let r = personalized_pagerank(&g, &[1.0, 2.0, 1.0], &PageRankConfig::default());
        assert_close(r[0], 0.25, 1e-9);
        assert_close(r[1], 0.5, 1e-9);
        assert_close(r[2], 0.25, 1e-9);
    }

    #[test]
    fn personalization_zero_entry_allowed() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 0, 1.0);
        let r = personalized_pagerank(&g, &[1.0, 0.0], &PageRankConfig::default());
        assert!(r[0] > 0.0 && r[1] > 0.0);
        assert!(r[0] > r[1]);
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn all_zero_personalization_panics() {
        let g = DiGraph::new(2);
        personalized_pagerank(&g, &[0.0, 0.0], &PageRankConfig::default());
    }

    #[test]
    #[should_panic(expected = "length")]
    fn wrong_personalization_length_panics() {
        let g = DiGraph::new(2);
        personalized_pagerank(&g, &[1.0], &PageRankConfig::default());
    }

    #[test]
    fn top_k_deterministic_ties() {
        let scores = [0.5, 0.9, 0.5, 0.1];
        assert_eq!(top_k(&scores, 3), vec![1, 0, 2]);
        assert_eq!(top_k(&scores, 10), vec![1, 0, 2, 3]);
        assert!(top_k(&scores, 0).is_empty());
    }

    use tl_support::qp_assert;
    use tl_support::quickprop::{check, gens};

    fn edge_gen(nodes: usize, max_edges: usize) -> impl tl_support::quickprop::Gen<Value = Vec<(usize, usize, f64)>> {
        gens::vecs(
            (gens::usizes(0..nodes), gens::usizes(0..nodes), gens::f64s(0.1..5.0)),
            0..max_edges,
        )
    }

    #[test]
    fn prop_rank_sums_to_one() {
        check(
            "rank_sums_to_one",
            (gens::usizes(1..25), edge_gen(25, 80)),
            |(n, edges)| {
                let n = *n;
                let mut g = DiGraph::new(n);
                for &(s, d, w) in edges {
                    if s < n && d < n {
                        g.add_edge(s, d, w);
                    }
                }
                let r = pagerank(&g, &PageRankConfig::default());
                let sum: f64 = r.iter().sum();
                qp_assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
                qp_assert!(r.iter().all(|&x| x >= 0.0));
                Ok(())
            },
        );
    }

    #[test]
    fn prop_rank_invariant_to_weight_scaling() {
        check(
            "rank_invariant_to_weight_scaling",
            (edge_gen(10, 40), gens::f64s(0.5..20.0)),
            |(edges, scale)| {
                if edges.is_empty() {
                    return Ok(());
                }
                let mut g1 = DiGraph::new(10);
                let mut g2 = DiGraph::new(10);
                for &(s, d, w) in edges {
                    g1.add_edge(s, d, w);
                    g2.add_edge(s, d, w * scale);
                }
                let r1 = pagerank(&g1, &PageRankConfig::default());
                let r2 = pagerank(&g2, &PageRankConfig::default());
                for (a, b) in r1.iter().zip(&r2) {
                    qp_assert!((a - b).abs() < 1e-8);
                }
                Ok(())
            },
        );
    }
}
