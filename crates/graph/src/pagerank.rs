//! PageRank and Personalized PageRank by power iteration.
//!
//! Semantics follow `networkx.pagerank`, which is what the paper's reference
//! implementation calls (Appendix A, damping α = 0.85):
//!
//! * transition probability from `u` to `v` is `w(u,v) / Σ_x w(u,x)`,
//! * dangling nodes (no out-edges) distribute their rank over the
//!   personalization vector,
//! * the restart ("teleport") distribution *is* the personalization vector —
//!   uniform for plain PageRank, recency-weighted `α^{−dᵢ}` for WILSON's
//!   recency adjustment (§2.2.1),
//! * iteration stops when the L1 change falls below `n · tol`.

use crate::digraph::DiGraph;

/// Configuration for the power iteration.
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Damping factor (probability of following an edge). NetworkX default.
    pub damping: f64,
    /// Per-node L1 convergence tolerance (NetworkX stops at `err < n·tol`).
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            tol: 1e-10,
            max_iter: 200,
        }
    }
}

/// Plain PageRank with a uniform restart distribution.
pub fn pagerank(graph: &DiGraph, config: &PageRankConfig) -> Vec<f64> {
    let n = graph.num_nodes();
    personalized_pagerank(graph, &vec![1.0; n], config)
}

/// Result of a warm-started power iteration ([`personalized_pagerank_warm`]).
///
/// The caller decides what to do with a non-converged run — the incremental
/// timeline maintenance falls back to the exact cold-start solver whenever
/// `converged` is false (its residual-fallback rule).
#[derive(Debug, Clone)]
pub struct WarmOutcome {
    /// The final score vector (a distribution summing to 1).
    pub scores: Vec<f64>,
    /// L1 change of the last iteration (`Σ |rank − next|`).
    pub residual: f64,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Whether the run met the `n · tol` stopping criterion.
    pub converged: bool,
}

/// Personalized PageRank by power iteration **seeded from a previous score
/// vector** instead of the restart distribution.
///
/// The fixed point is the same as [`personalized_pagerank`]'s — power
/// iteration converges from any starting distribution — so a seed taken
/// from the previous epoch's scores of a lightly-changed graph converges in
/// a handful of iterations instead of tens. The iterate sequence differs
/// from the cold start, so the returned scores are *near* the exact ones
/// (within the convergence tolerance), not bit-identical; callers that
/// need bit-exactness must use the cold solver.
///
/// A seed that is unusable (wrong length, non-finite entries, or a
/// non-positive sum) falls back to the restart distribution, which makes
/// the run equivalent to a cold start.
pub fn personalized_pagerank_warm(
    graph: &DiGraph,
    personalization: &[f64],
    config: &PageRankConfig,
    seed: &[f64],
) -> WarmOutcome {
    let n = graph.num_nodes();
    assert_eq!(
        personalization.len(),
        n,
        "personalization length must equal node count"
    );
    if n == 0 {
        return WarmOutcome {
            scores: Vec::new(),
            residual: 0.0,
            iterations: 0,
            converged: true,
        };
    }
    let psum: f64 = personalization.iter().sum();
    assert!(
        psum > 0.0 && personalization.iter().all(|&p| p >= 0.0 && p.is_finite()),
        "personalization must be non-negative with positive sum"
    );
    let restart: Vec<f64> = personalization.iter().map(|&p| p / psum).collect();

    let seed_sum: f64 = seed.iter().sum();
    let seed_ok = seed.len() == n
        && seed_sum > 0.0
        && seed.iter().all(|&s| s >= 0.0 && s.is_finite());
    let mut rank: Vec<f64> = if seed_ok {
        seed.iter().map(|&s| s / seed_sum).collect()
    } else {
        restart.clone()
    };

    let csr = graph.compile();
    let d = config.damping;
    let mut next = vec![0.0f64; n];
    let mut residual = f64::INFINITY;
    let mut iterations = 0usize;
    let mut converged = false;

    for _ in 0..config.max_iter {
        iterations += 1;
        let dangling_mass: f64 = (0..n)
            .filter(|&u| csr.out_weight[u] == 0.0)
            .map(|u| rank[u])
            .sum();
        for (i, nx) in next.iter_mut().enumerate() {
            *nx = (1.0 - d + d * dangling_mass) * restart[i];
        }
        #[allow(clippy::needless_range_loop)] // u indexes rank, out_weight and out_edges
        for u in 0..n {
            let ow = csr.out_weight[u];
            if ow == 0.0 {
                continue;
            }
            let contrib = d * rank[u] / ow;
            for (v, w) in csr.out_edges(u) {
                next[v] += contrib * w;
            }
        }
        residual = rank
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut rank, &mut next);
        if residual < (n as f64) * config.tol {
            converged = true;
            break;
        }
    }
    WarmOutcome {
        scores: rank,
        residual,
        iterations,
        converged,
    }
}

/// Personalized PageRank: the restart distribution is `personalization`
/// normalized to sum 1. Panics if the vector length mismatches the node
/// count or its sum is not positive.
pub fn personalized_pagerank(
    graph: &DiGraph,
    personalization: &[f64],
    config: &PageRankConfig,
) -> Vec<f64> {
    let n = graph.num_nodes();
    assert_eq!(
        personalization.len(),
        n,
        "personalization length must equal node count"
    );
    if n == 0 {
        return Vec::new();
    }
    let psum: f64 = personalization.iter().sum();
    assert!(
        psum > 0.0 && personalization.iter().all(|&p| p >= 0.0 && p.is_finite()),
        "personalization must be non-negative with positive sum"
    );
    let restart: Vec<f64> = personalization.iter().map(|&p| p / psum).collect();

    let csr = graph.compile();
    let d = config.damping;
    let mut rank = restart.clone();
    let mut next = vec![0.0f64; n];

    for _ in 0..config.max_iter {
        // Mass from dangling nodes is redistributed via the restart vector.
        let dangling_mass: f64 = (0..n)
            .filter(|&u| csr.out_weight[u] == 0.0)
            .map(|u| rank[u])
            .sum();
        for (i, nx) in next.iter_mut().enumerate() {
            *nx = (1.0 - d + d * dangling_mass) * restart[i];
        }
        #[allow(clippy::needless_range_loop)] // u indexes rank, out_weight and out_edges
        for u in 0..n {
            let ow = csr.out_weight[u];
            if ow == 0.0 {
                continue;
            }
            let contrib = d * rank[u] / ow;
            for (v, w) in csr.out_edges(u) {
                next[v] += contrib * w;
            }
        }
        let err: f64 = rank
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut rank, &mut next);
        if err < (n as f64) * config.tol {
            break;
        }
    }
    rank
}

/// Indices of the top-`k` nodes by score, descending, ties broken by lower
/// index (deterministic).
pub fn top_k(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} vs {b}");
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new(0);
        assert!(pagerank(&g, &PageRankConfig::default()).is_empty());
    }

    #[test]
    fn single_node_gets_all_rank() {
        let g = DiGraph::new(1);
        let r = pagerank(&g, &PageRankConfig::default());
        assert_close(r[0], 1.0, 1e-9);
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let mut g = DiGraph::new(4);
        for i in 0..4 {
            g.add_edge(i, (i + 1) % 4, 1.0);
        }
        let r = pagerank(&g, &PageRankConfig::default());
        for &x in &r {
            assert_close(x, 0.25, 1e-9);
        }
    }

    #[test]
    fn star_center_dominates() {
        // 1,2,3 all point at 0.
        let mut g = DiGraph::new(4);
        for i in 1..4 {
            g.add_edge(i, 0, 1.0);
        }
        let r = pagerank(&g, &PageRankConfig::default());
        assert!(r[0] > r[1]);
        assert_close(r[1], r[2], 1e-12);
        assert_close(r[2], r[3], 1e-12);
    }

    #[test]
    fn two_node_analytic() {
        // 0 -> 1 only. Analytic solution with dangling node 1:
        // r0 = (1-d)/2 + d*m/2 where m = r1 (dangling) ... solve by iteration
        // against the independently computed NetworkX value.
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, 1.0);
        let r = pagerank(&g, &PageRankConfig::default());
        // networkx.pagerank(nx.DiGraph([(0,1)])) == {0: 0.35043..., 1: 0.64956...}
        assert_close(r[0], 0.350877, 1e-4);
        assert_close(r[1], 0.649122, 1e-4);
    }

    #[test]
    fn weights_shift_rank() {
        // 0 sends 90% of its weight to 1, 10% to 2.
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 9.0);
        g.add_edge(0, 2, 1.0);
        let r = pagerank(&g, &PageRankConfig::default());
        assert!(r[1] > r[2]);
    }

    #[test]
    fn personalization_biases_restart() {
        // Disconnected nodes: rank equals the normalized personalization.
        let g = DiGraph::new(3);
        let r = personalized_pagerank(&g, &[1.0, 2.0, 1.0], &PageRankConfig::default());
        assert_close(r[0], 0.25, 1e-9);
        assert_close(r[1], 0.5, 1e-9);
        assert_close(r[2], 0.25, 1e-9);
    }

    #[test]
    fn personalization_zero_entry_allowed() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 0, 1.0);
        let r = personalized_pagerank(&g, &[1.0, 0.0], &PageRankConfig::default());
        assert!(r[0] > 0.0 && r[1] > 0.0);
        assert!(r[0] > r[1]);
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn all_zero_personalization_panics() {
        let g = DiGraph::new(2);
        personalized_pagerank(&g, &[0.0, 0.0], &PageRankConfig::default());
    }

    #[test]
    #[should_panic(expected = "length")]
    fn wrong_personalization_length_panics() {
        let g = DiGraph::new(2);
        personalized_pagerank(&g, &[1.0], &PageRankConfig::default());
    }

    #[test]
    fn top_k_deterministic_ties() {
        let scores = [0.5, 0.9, 0.5, 0.1];
        assert_eq!(top_k(&scores, 3), vec![1, 0, 2]);
        assert_eq!(top_k(&scores, 10), vec![1, 0, 2, 3]);
        assert!(top_k(&scores, 0).is_empty());
    }

    use tl_support::qp_assert;
    use tl_support::quickprop::{check, gens};

    fn edge_gen(nodes: usize, max_edges: usize) -> impl tl_support::quickprop::Gen<Value = Vec<(usize, usize, f64)>> {
        gens::vecs(
            (gens::usizes(0..nodes), gens::usizes(0..nodes), gens::f64s(0.1..5.0)),
            0..max_edges,
        )
    }

    #[test]
    fn prop_rank_sums_to_one() {
        check(
            "rank_sums_to_one",
            (gens::usizes(1..25), edge_gen(25, 80)),
            |(n, edges)| {
                let n = *n;
                let mut g = DiGraph::new(n);
                for &(s, d, w) in edges {
                    if s < n && d < n {
                        g.add_edge(s, d, w);
                    }
                }
                let r = pagerank(&g, &PageRankConfig::default());
                let sum: f64 = r.iter().sum();
                qp_assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
                qp_assert!(r.iter().all(|&x| x >= 0.0));
                Ok(())
            },
        );
    }

    #[test]
    fn warm_start_from_fixed_point_converges_immediately() {
        let mut g = DiGraph::new(4);
        for i in 1..4 {
            g.add_edge(i, 0, 1.0);
        }
        let cfg = PageRankConfig::default();
        let p = vec![1.0; 4];
        let exact = personalized_pagerank(&g, &p, &cfg);
        let warm = personalized_pagerank_warm(&g, &p, &cfg, &exact);
        assert!(warm.converged);
        assert!(warm.iterations <= 2, "took {} iterations", warm.iterations);
        for (a, b) in warm.scores.iter().zip(&exact) {
            assert_close(*a, *b, 1e-8);
        }
    }

    #[test]
    fn warm_start_with_bad_seed_matches_cold_start() {
        // Wrong length, NaN, and all-zero seeds all fall back to the restart
        // distribution, which makes the run identical to the cold solver.
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 2.0);
        g.add_edge(1, 2, 1.0);
        let cfg = PageRankConfig::default();
        let p = vec![1.0; 3];
        let exact = personalized_pagerank(&g, &p, &cfg);
        for seed in [vec![], vec![0.3, f64::NAN, 0.4], vec![0.0, 0.0, 0.0]] {
            let warm = personalized_pagerank_warm(&g, &p, &cfg, &seed);
            assert!(warm.converged);
            for (a, b) in warm.scores.iter().zip(&exact) {
                assert_eq!(a.to_bits(), b.to_bits(), "bad seed must equal cold start");
            }
        }
    }

    #[test]
    fn warm_start_empty_graph() {
        let g = DiGraph::new(0);
        let out = personalized_pagerank_warm(&g, &[], &PageRankConfig::default(), &[]);
        assert!(out.converged && out.scores.is_empty());
    }

    #[test]
    fn warm_start_reports_non_convergence_under_tight_budget() {
        let mut g = DiGraph::new(5);
        for i in 0..5 {
            g.add_edge(i, (i + 2) % 5, 1.0 + i as f64);
        }
        let cfg = PageRankConfig {
            max_iter: 1,
            tol: 1e-15,
            ..PageRankConfig::default()
        };
        let out = personalized_pagerank_warm(&g, &[1.0; 5], &cfg, &[0.5, 0.1, 0.1, 0.2, 0.1]);
        assert!(!out.converged);
        assert_eq!(out.iterations, 1);
        assert!(out.residual.is_finite());
    }

    #[test]
    fn prop_warm_converges_to_cold_fixed_point_from_any_seed() {
        check(
            "warm_converges_to_cold_fixed_point",
            (
                gens::usizes(1..20),
                edge_gen(20, 60),
                gens::vecs(gens::f64s(0.0..1.0), 0..20),
            ),
            |(n, edges, seed)| {
                let n = *n;
                let mut g = DiGraph::new(n);
                for &(s, d, w) in edges {
                    if s < n && d < n {
                        g.add_edge(s, d, w);
                    }
                }
                let cfg = PageRankConfig::default();
                let p = vec![1.0; n];
                let exact = personalized_pagerank(&g, &p, &cfg);
                let warm = personalized_pagerank_warm(&g, &p, &cfg, seed);
                qp_assert!(warm.converged, "did not converge");
                let l1: f64 = warm
                    .scores
                    .iter()
                    .zip(&exact)
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                qp_assert!(l1 < 1e-6, "warm diverges from exact by L1 {l1}");
                Ok(())
            },
        );
    }

    #[test]
    fn prop_rank_invariant_to_weight_scaling() {
        check(
            "rank_invariant_to_weight_scaling",
            (edge_gen(10, 40), gens::f64s(0.5..20.0)),
            |(edges, scale)| {
                if edges.is_empty() {
                    return Ok(());
                }
                let mut g1 = DiGraph::new(10);
                let mut g2 = DiGraph::new(10);
                for &(s, d, w) in edges {
                    g1.add_edge(s, d, w);
                    g2.add_edge(s, d, w * scale);
                }
                let r1 = pagerank(&g1, &PageRankConfig::default());
                let r2 = pagerank(&g2, &PageRankConfig::default());
                for (a, b) in r1.iter().zip(&r2) {
                    qp_assert!((a - b).abs() < 1e-8);
                }
                Ok(())
            },
        );
    }
}
