//! Graph substrate for the WILSON reproduction.
//!
//! Both stages of WILSON are PageRank computations: date selection runs
//! (personalized) PageRank over the *date reference graph* (§2.2) and daily
//! summarization runs PageRank over per-day *sentence graphs* with BM25 edge
//! weights (TextRank, §2.3). This crate provides the shared machinery:
//!
//! * [`digraph`] — a compact weighted directed graph in CSR form,
//! * [`pagerank`] — PageRank / Personalized PageRank by power iteration,
//!   matching NetworkX semantics (the paper's implementation, Appendix A):
//!   damping 0.85, out-weight-normalized transition, dangling mass
//!   redistributed to the personalization vector.
#![warn(missing_docs)]

pub mod digraph;
pub mod pagerank;

pub use digraph::DiGraph;
pub use pagerank::{
    pagerank, personalized_pagerank, personalized_pagerank_warm, top_k, PageRankConfig,
    WarmOutcome,
};
