#!/usr/bin/env bash
# Full local gate: format, lints, tests, experiment smoke.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt =="
cargo fmt --all -- --check || { echo "run: cargo fmt --all"; exit 1; }

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test --workspace --release

echo "== fast experiment smoke =="
cargo build --release -p tl-eval --bins
cargo run --release -p tl-eval --bin run_all -- fast

echo "all checks passed"
