#!/usr/bin/env bash
# Hermetic CI: the workspace must build and test from a cold checkout with
# no network and no registry cache, and must never reacquire a crates.io
# dependency. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== dependency policy: path-only =="
# Any dependency line with `version = `, a bare `name = "x.y"` version
# string, or a `git = ` source is a registry/git dependency. Everything in
# this workspace must be `path = ...` / `workspace = true`.
bad=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    # Strip comments, then look at [*dependencies*] sections only.
    deps=$(awk '
        /^[[:space:]]*#/ { next }
        /^\[/ { in_deps = ($0 ~ /dependencies/) }
        in_deps && NF { print }
    ' "$manifest" | grep -v '^\[' || true)
    offending=$(printf '%s\n' "$deps" \
        | grep -E '(version[[:space:]]*=|git[[:space:]]*=|registry[[:space:]]*=|^[A-Za-z0-9_-]+[[:space:]]*=[[:space:]]*"[0-9])' \
        || true)
    if [ -n "$offending" ]; then
        echo "non-path dependency in $manifest:" >&2
        printf '%s\n' "$offending" >&2
        bad=1
    fi
done
if [ "$bad" -ne 0 ]; then
    echo "FAIL: external dependencies are not allowed (see DESIGN.md, 'Hermetic build')" >&2
    exit 1
fi
echo "ok: all dependencies are path dependencies"

echo "== offline release build =="
cargo build --release --offline

echo "== offline tests (all targets) =="
cargo test -q --offline

echo "== thread pool: property + no-spawn-per-call gate =="
# Work-stealing pool invariants: nested par_map never deadlocks (even on a
# 1-worker pool), a panicking task poisons only its own item, seeded
# 8-thread stress runs are replay-deterministic, expired deadline work is
# observable in the abandoned counter, and — the reason the pool exists —
# hammering every hot-path map entry point never spawns OS threads per
# invocation (live /proc/self/task probe, in its own test binary).
cargo test -q --offline -p tl-support --test pool_properties --test pool_thread_probe

echo "== thread pool: single-worker full-suite pass =="
# The entire workspace must pass with the global pool clamped to one
# worker: results are thread-count-independent by construction, and the
# caller-helps scheduler must make any nesting depth deadlock-free.
TL_POOL_THREADS=1 cargo test -q --offline

echo "== ANN index: multi-thread differential gate =="
# Fixed seeds, 8 pool workers: builds and queries at parallelism degrees
# {1, 2, 8} must stay bitwise identical (ids and f64 score bits), including
# incremental inserts, date-filtered queries and knn_pairs rows.
TL_POOL_THREADS=8 cargo test -q --offline -p tl-embed --test ann_properties \
    thread_count_differential

echo "== sharded engine: differential bit-identity gate =="
# The sharded engine must stay bit-identical to the single-index reference
# (ranked ids and f64 score bits) for keyword, quoted-phrase and
# date-range queries across shard counts.
cargo test -q --offline -p tl-ir --test sharded_differential

echo "== sharded engine: concurrency stress (fixed seed, small budget) =="
# Deterministic budget so CI is reproducible and fast; bump TL_STRESS_ITERS
# locally to soak. Readers under concurrent ingestion must only ever
# observe fully published epochs (post-hoc serial replay per epoch).
# 5745438 == 0x57AB1E, the suite's default seed (decimal: the env var is
# parsed as a plain integer).
TL_STRESS_ITERS=1 TL_STRESS_SEED=5745438 \
    cargo test -q --offline -p tl-wilson --test stress

echo "== durable engine: WAL recovery gate =="
# Crash recovery (snapshot + WAL tail replay, torn-record truncation) must
# reproduce the pre-crash engine bit-identically, including from empty,
# truncated, corrupted and snapshot-newer-than-WAL logs.
cargo test -q --offline -p tl-ir --test wal_recovery

echo "== durable engine: chaos suite (fixed seed, small budget) =="
# Kills the engine at every WAL byte offset and runs seeded fault schedules
# (injected errors, torn appends, lost fsyncs); recovery must always come
# back as a bit-identical prefix of the acknowledged inserts. Same default
# seed convention as the stress suite (5745438 == 0x57AB1E).
TL_CHAOS_ITERS=1 TL_CHAOS_SEED=5745438 \
    cargo test -q --offline -p tl-wilson --test chaos

echo "== replication: protocol differential gate =="
# Follower convergence must be bit-identical to the primary (ranked ids
# and f64 score bits) across snapshot catch-up, compaction racing the WAL
# tail, the torn-listing gap retry, follower restart, faulty read-side
# shipping and election/failover.
cargo test -q --offline -p tl-ir --test replication

echo "== replication: chaos suite (fixed seed, small budget) =="
# Kills the primary at every WAL byte offset and a follower at every
# replication offset, then runs seeded dual-sided fault schedules (write
# faults on the primary, read errors + short reads on the shipping path)
# ending in primary death + election. Followers must always be a
# bit-identical prefix of the acked epochs and no honestly-fsynced publish
# may be lost across failover. Same seed convention (5745438 == 0x57AB1E).
TL_CHAOS_ITERS=1 TL_CHAOS_SEED=5745438 \
    cargo test -q --offline -p tl-wilson --test chaos replication

echo "== all-pairs kernel: differential bit-identity gate =="
# The term-at-a-time similarity kernel must stay bit-identical to the
# quadratic pairwise reference (stored rows and row totals, f64 bits,
# serial and parallel variants) across random corpora and thresholds.
cargo test -q --offline -p tl-nlp --test allpairs_differential

echo "== bench targets compile =="
cargo build --offline --all-targets

echo "== bench smoke: report format + regression gate =="
# Small full-pipeline benches. bench_smoke re-parses the BENCH_pipeline.json
# it writes (report-format check); with TL_BENCH_ENFORCE=1 both tests fail
# if any fresh median (pipeline/smoke, every table7_runtime/* entry)
# regresses more than 2x over its committed baseline — so losing the
# all-pairs kernel in a baseline fails CI, not just a WILSON slowdown.
# TL_BENCH_REPORT_DIR keeps the scratch report out of the working tree.
# Absolute path: cargo runs test binaries from the package directory.
TL_BENCH_REPORT_DIR="$PWD/target/bench-smoke" TL_BENCH_ENFORCE=1 TL_BENCH_ITERS=3 \
    cargo test -q --offline --release -p tl-bench --test pipeline -- \
    --ignored bench_smoke bench_methods --nocapture

echo "== bench smoke: durability overhead gate =="
# WAL ingest must stay within 3x of the in-memory engine in the same run
# (the headline durability budget; was 2x before the shared-vocabulary
# publish made the volatile denominator ~2x faster), and with
# TL_BENCH_ENFORCE=1 every durability/* median must stay within 2x of its
# committed BENCH_durability.json baseline.
TL_BENCH_REPORT_DIR="$PWD/target/bench-smoke" TL_BENCH_ENFORCE=1 TL_BENCH_ITERS=3 \
    cargo test -q --offline --release -p tl-bench --test durability -- \
    --ignored --nocapture

echo "== bench smoke: replication gate =="
# Ship latency, fresh-follower catch-up at 1k/10k records and
# failover-to-first-serve; with TL_BENCH_ENFORCE=1 every replication/*
# median must stay within 2x of its committed BENCH_replication.json
# baseline.
TL_BENCH_REPORT_DIR="$PWD/target/bench-smoke" TL_BENCH_ENFORCE=1 TL_BENCH_ITERS=3 \
    cargo test -q --offline --release -p tl-bench --test replication -- \
    --ignored --nocapture

echo "== ANN index: recall + date-filter property gate =="
# quickprop suite over randomized clustered corpora: recall@10 >= 0.9 at
# the default AnnConfig, date-filtered queries return only in-range ids,
# candidate scores bitwise-equal brute force (exact re-rank), and the
# fixed-seed differential test (bulk == rebuilt, full probe == exact).
cargo test -q --offline -p tl-embed --test ann_properties

echo "== ANN consumers: 100k-sentence scale proof (release) =="
# autocompress and sparse affinity propagation over a >=100k-sentence
# synthetic corpus; a process-wide allocation counter proves no dense n^2
# similarity matrix is ever materialized.
cargo test -q --offline --release -p tl-wilson --test autocompress_scale -- \
    --ignored --nocapture

echo "== bench smoke: ANN scaling gate =="
# Smallest ANN tier (~18k sentences): always asserts recall@10 >= 0.9; with
# TL_BENCH_ENFORCE=1 fresh ann/brute query medians must stay within 2x of
# the committed BENCH_scaling.json baselines and recall must not drop below
# the committed floor.
TL_BENCH_REPORT_DIR="$PWD/target/bench-smoke" TL_BENCH_ENFORCE=1 \
    cargo test -q --offline --release -p tl-bench --test ann -- \
    --ignored bench_ann_smoke --nocapture

echo "== http server: protocol property + fuzz gate =="
# quickprop suite over generated requests (random methods, header casing,
# chunked reads, pipelining, content-length edges) plus a 10k-case seeded
# fuzz corpus: every input parses or is rejected with 400 — never a panic,
# never a hang.
TL_FUZZ_CASES=10000 cargo test -q --offline -p tl-support --test http_properties

echo "== http server: overload/admission gate =="
# Deterministic burst past the admission queue: every connection resolves
# to exactly one of {200, 429}, shed == accepted - completed after the
# drain, and the server returns to zero-shed steady state.
cargo test -q --offline -p tl-support --test http_overload

echo "== service layer: typed API + golden wire gate =="
# JSON roundtrips for every wire type, EngineError -> stable HTTP status
# mapping (incl. a mid-flight storage kill -> 503 over a real socket), a
# no-unwrap audit of the handler path, and byte-for-byte golden
# request/response transcripts per endpoint (re-bless with
# TL_UPDATE_GOLDEN=1).
cargo test -q --offline -p tl-wilson --test service_api --test http_golden

echo "== bench smoke: open-loop service gate =="
# Short low-rate open-loop window over real sockets: zero sheds, zero
# dropped connections, sane worst-endpoint p99; with TL_BENCH_ENFORCE=1
# the fresh p99 must stay within 2x of the committed BENCH_service.json
# baseline (0.1 s absolute floor against scheduler noise).
TL_BENCH_REPORT_DIR="$PWD/target/bench-smoke" TL_BENCH_ENFORCE=1 \
    cargo test -q --offline --release -p tl-bench --test serve -- \
    --ignored bench_serve_smoke --nocapture

echo "== incremental maintenance: differential proof gate =="
# Incrementally refreshed timelines must stay bit-identical to from-scratch
# rebuilds (exact mode) and within bounded divergence with forced fallbacks
# (warm mode) across randomized ingest schedules.
cargo test -q --offline -p tl-wilson --test incremental_differential

echo "== bench smoke: incremental steady-state gate =="
# One-article tick against a 10k-sentence warm corpus: the incremental
# session must beat the full-rebuild tick by at least the noise-tolerant
# 4x floor (committed headline >= 5x), and with TL_BENCH_ENFORCE=1 both
# latency medians must stay within 2x of their committed
# BENCH_incremental.json baselines. No TL_BENCH_ITERS override: the tick
# distribution is bimodal and needs the bench's larger default sample for
# a stable median.
TL_BENCH_REPORT_DIR="$PWD/target/bench-smoke" TL_BENCH_ENFORCE=1 \
    cargo test -q --offline --release -p tl-bench --test incremental -- \
    --ignored --nocapture

echo "CI passed."
