//! The hermetic-build determinism guarantee: every stage of the pipeline is
//! seeded, so two identical runs — synthetic corpus generation, the full
//! WILSON pipeline plus a baseline, the approximate-randomization
//! significance test, and report serialization — must produce byte-identical
//! eval reports.

use std::path::PathBuf;
use tl_baselines::TilseBaseline;
use tl_corpus::{generate, SynthConfig};
use tl_eval::protocol::evaluate_method;
use tl_eval::report::ExperimentReport;
use tl_eval::UnitMetrics;
use tl_rouge::approximate_randomization;
use tl_wilson::{Wilson, WilsonConfig};

/// One full run: generate the corpus, evaluate WILSON and ASMDS on it, run
/// the significance test, and serialize the report. Returns the report bytes
/// and the significance p-value.
fn full_run(path: &PathBuf) -> (Vec<u8>, f64) {
    let ds = generate(&SynthConfig::tiny());
    let mut wilson = evaluate_method(&ds, &Wilson::new(WilsonConfig::default()));
    let mut asmds = evaluate_method(&ds, &TilseBaseline::asmds());
    // Wall-clock timing is the one legitimately nondeterministic field.
    for m in [&mut wilson, &mut asmds] {
        for u in &mut m.units {
            u.seconds = 0.0;
        }
    }
    let sig = approximate_randomization(
        &wilson.series(|u: &UnitMetrics| u.concat_r1),
        &asmds.series(|u: &UnitMetrics| u.concat_r1),
        2000,
        42,
    );
    let report = ExperimentReport::new("determinism", ds.name.as_str(), 1.0, &[wilson, asmds]);
    report.write_json(path).expect("write report");
    (std::fs::read(path).expect("read back"), sig.p_value)
}

#[test]
fn two_runs_produce_byte_identical_reports() {
    let dir = std::env::temp_dir().join(format!("tl-determinism-{}", std::process::id()));
    let a_path = dir.join("run_a.json");
    let b_path = dir.join("run_b.json");
    let (a, p_a) = full_run(&a_path);
    let (b, p_b) = full_run(&b_path);
    assert_eq!(p_a, p_b, "significance test is not seed-deterministic");
    assert!(!a.is_empty());
    assert_eq!(a, b, "reports differ between identical seeded runs");

    // And the serialized report loads back to an equal value.
    let loaded = ExperimentReport::read_json(&a_path).expect("parse report");
    assert_eq!(loaded.methods.len(), 2);
    assert_eq!(loaded.experiment, "determinism");
    let _ = std::fs::remove_dir_all(&dir);
}
