//! End-to-end integration tests: full pipelines from synthetic articles to
//! evaluated timelines, spanning every crate in the workspace.

use tl_baselines::{RandomBaseline, TilseBaseline};
use tl_corpus::{dated_sentences, generate, SynthConfig, TimelineGenerator};
use tl_eval::protocol::evaluate_method;
use tl_rouge::{date_f1, TimelineRouge, TimelineRougeMode};
use tl_wilson::{Wilson, WilsonConfig};

fn tiny() -> tl_corpus::Dataset {
    generate(&SynthConfig::tiny())
}

#[test]
fn wilson_beats_random_on_rouge_and_dates() {
    // The tiny profile is too noisy for ROUGE-2 ordering (3 units); use a
    // small Timeline17-shaped corpus, as Tables 5/7 do. Three topics (6
    // units) keep the default `cargo test` quick while staying stable.
    let mut ds = generate(&SynthConfig::timeline17().with_scale(0.02));
    ds.topics.truncate(3);
    let wilson = evaluate_method(&ds, &Wilson::new(WilsonConfig::default()));
    let random = evaluate_method(&ds, &RandomBaseline::default());
    assert!(
        wilson.concat_r2() > random.concat_r2(),
        "WILSON R2 {} <= Random R2 {}",
        wilson.concat_r2(),
        random.concat_r2()
    );
    assert!(
        wilson.date_f1() > random.date_f1(),
        "WILSON date F1 {} <= Random {}",
        wilson.date_f1(),
        random.date_f1()
    );
}

#[test]
fn wilson_is_faster_than_submodular_on_nontrivial_corpus() {
    // A corpus big enough that the quadratic similarity pass dominates.
    let ds = generate(&SynthConfig::timeline17().with_scale(0.02));
    let topic = &ds.topics[0];
    let corpus = dated_sentences(&topic.articles, None);
    assert!(corpus.len() > 2000, "corpus too small: {}", corpus.len());
    let gt = &topic.timelines[0];
    let (t, n) = (gt.num_dates(), gt.target_sentences_per_date());

    let start = std::time::Instant::now();
    let w = Wilson::new(WilsonConfig::default()).generate(&corpus, &topic.query, t, n);
    let wilson_secs = start.elapsed().as_secs_f64();

    let start = std::time::Instant::now();
    let s = TilseBaseline::asmds().generate(&corpus, &topic.query, t, n);
    let tilse_secs = start.elapsed().as_secs_f64();

    assert!(w.num_dates() > 0 && s.num_dates() > 0);
    assert!(
        tilse_secs > wilson_secs,
        "TILSE {tilse_secs:.3}s not slower than WILSON {wilson_secs:.3}s"
    );
}

#[test]
fn ablation_ordering_holds_on_dates() {
    // Date selection quality: uniform < W3 PageRank-based variants
    // (Table 7's consistent ordering on Date F1).
    let ds = tiny();
    let uniform = evaluate_method(&ds, &Wilson::new(WilsonConfig::uniform()));
    let tran = evaluate_method(&ds, &Wilson::new(WilsonConfig::tran()));
    assert!(
        tran.date_f1() > uniform.date_f1(),
        "Tran {} <= uniform {}",
        tran.date_f1(),
        uniform.date_f1()
    );
}

#[test]
fn gt_dates_upper_bound_dominates_wilson() {
    // Feeding ground-truth dates (Table 8's two-stage bound) must beat the
    // unsupervised pipeline on date F1 by construction, and not hurt ROUGE.
    let ds = tiny();
    let wilson = Wilson::new(WilsonConfig::default());
    let mut rouge = TimelineRouge::new();
    for topic in &ds.topics {
        let corpus = dated_sentences(&topic.articles, None);
        for gt in &topic.timelines {
            let n = gt.target_sentences_per_date();
            let bound = wilson.generate_on_dates(&corpus, &gt.dates(), n);
            let free = wilson.generate(&corpus, &topic.query, gt.num_dates(), n);
            let f_bound = date_f1(&bound.dates(), &gt.dates());
            let f_free = date_f1(&free.dates(), &gt.dates());
            assert!(
                f_bound >= f_free - 1e-9,
                "bound dates {f_bound} < free dates {f_free}"
            );
            let r_bound = rouge
                .rouge_n(
                    1,
                    TimelineRougeMode::Concat,
                    bound.as_slice(),
                    gt.as_slice(),
                )
                .f1;
            assert!(r_bound > 0.0);
        }
    }
}

#[test]
fn realtime_system_round_trip() {
    let ds = tiny();
    let topic = &ds.topics[0];
    let sys = tl_wilson::RealTimeSystem::new(WilsonConfig::default());
    sys.ingest_all(&topic.articles).unwrap();
    let cfg = SynthConfig::tiny();
    let tl = sys.timeline(&tl_wilson::realtime::TimelineQuery {
        keywords: topic.query.clone(),
        window: (
            cfg.start_date,
            cfg.start_date.plus_days(cfg.duration_days as i32),
        ),
        num_dates: 5,
        sents_per_date: 2,
        fetch_limit: 1000,
    })
    .unwrap();
    assert!(tl.num_dates() > 0);
    // Every emitted sentence must exist in the ingested articles.
    let pool: std::collections::HashSet<&str> = topic
        .articles
        .iter()
        .flat_map(|a| a.sentences.iter().map(String::as_str))
        .collect();
    for (_, sents) in &tl.entries {
        for s in sents {
            assert!(pool.contains(s.as_str()));
        }
    }
}

/// Render a timeline in the golden-fixture format: one date line per entry,
/// each summary sentence indented below it.
fn render_timeline(header: &str, tl: &tl_corpus::Timeline) -> String {
    let mut out = String::new();
    out.push_str(header);
    for (date, sents) in &tl.entries {
        out.push_str(&format!("{date}\n"));
        for s in sents {
            out.push_str(&format!("  {s}\n"));
        }
    }
    out
}

/// Line-by-line diff with context, readable straight from the test log.
fn first_divergence(expected: &str, actual: &str) -> String {
    let e: Vec<&str> = expected.lines().collect();
    let a: Vec<&str> = actual.lines().collect();
    for i in 0..e.len().max(a.len()) {
        let el = e.get(i).copied();
        let al = a.get(i).copied();
        if el != al {
            return format!(
                "first divergence at line {}:\n  expected: {}\n  actual:   {}",
                i + 1,
                el.unwrap_or("<end of fixture>"),
                al.unwrap_or("<end of output>"),
            );
        }
    }
    "contents equal".into()
}

#[test]
fn golden_timelines_match_fixtures() {
    // Deterministic end-to-end snapshots: two synthetic topics through the
    // full real-time path (ingest → sharded search → WILSON). The fixtures
    // pin the complete output — dates, sentence choice, ordering — so any
    // behavioral drift anywhere in the pipeline shows up as a readable
    // diff. Re-bless intentional changes with:
    //   TL_UPDATE_GOLDEN=1 cargo test golden_timelines_match_fixtures
    let ds = tiny();
    let cfg = SynthConfig::tiny();
    let window = (
        cfg.start_date,
        cfg.start_date.plus_days(cfg.duration_days as i32),
    );
    let update = std::env::var("TL_UPDATE_GOLDEN").is_ok();
    for (i, topic) in ds.topics.iter().take(2).enumerate() {
        let q = tl_wilson::TimelineQuery {
            keywords: topic.query.clone(),
            window,
            num_dates: 5,
            sents_per_date: 2,
            fetch_limit: 1000,
        };
        let sys = tl_wilson::RealTimeSystem::new(WilsonConfig::default());
        sys.ingest_all(&topic.articles).unwrap();
        let tl = sys.timeline(&q).unwrap();
        assert!(tl.num_dates() > 0, "topic {i}: empty timeline");
        let header = format!(
            "# golden timeline · synthetic tiny topic {i}\n# query: {}\n",
            topic.query
        );
        let rendered = render_timeline(&header, &tl);

        // The same corpus fed as an initial batch plus one-article ticks,
        // querying after every tick so the memoized incremental session
        // advances by deltas, must land on the identical golden output.
        let inc = tl_wilson::RealTimeSystem::new(WilsonConfig::default());
        let (batch, ticks) = topic.articles.split_at(topic.articles.len() / 2);
        inc.ingest_all(batch).unwrap();
        let mut inc_tl = inc.timeline(&q).unwrap();
        for article in ticks {
            inc.ingest(article).unwrap();
            inc_tl = inc.timeline(&q).unwrap();
        }
        assert!(
            render_timeline(&header, &inc_tl) == rendered,
            "topic {i}: incremental final timeline diverges from batch\n{}",
            first_divergence(&rendered, &render_timeline(&header, &inc_tl)),
        );
        // The test is registered from crates/eval; fixtures live at the
        // repo root next to this source file.
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../tests/golden")
            .join(format!("tiny_topic{i}.txt"));
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &rendered).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); generate it with \
                 TL_UPDATE_GOLDEN=1 cargo test golden_timelines_match_fixtures"
            , path.display())
        });
        assert!(
            expected == rendered,
            "topic {i}: timeline diverges from golden fixture {}\n{}\n\n\
             If this change is intentional, re-bless with:\n  \
             TL_UPDATE_GOLDEN=1 cargo test golden_timelines_match_fixtures",
            path.display(),
            first_divergence(&expected, &rendered),
        );
    }
}

#[test]
fn all_methods_produce_valid_timelines() {
    let ds = tiny();
    let topic = &ds.topics[0];
    let corpus = dated_sentences(&topic.articles, None);
    let methods: Vec<Box<dyn TimelineGenerator>> = vec![
        Box::new(RandomBaseline::default()),
        Box::new(tl_baselines::ChieuBaseline::default()),
        Box::new(tl_baselines::MeadBaseline::default()),
        Box::new(tl_baselines::EtsBaseline::default()),
        Box::new(TilseBaseline::asmds()),
        Box::new(TilseBaseline::tls_constraints()),
        Box::new(Wilson::new(WilsonConfig::default())),
    ];
    for m in &methods {
        let tl = m.generate(&corpus, &topic.query, 4, 2);
        assert!(tl.num_dates() <= 4, "{}: too many dates", m.name());
        assert!(tl.num_dates() > 0, "{}: empty timeline", m.name());
        let dates = tl.dates();
        assert!(
            dates.windows(2).all(|w| w[0] < w[1]),
            "{}: dates unsorted",
            m.name()
        );
        for (_, sents) in &tl.entries {
            assert!(sents.len() <= 2, "{}: too many sentences", m.name());
            assert!(!sents.is_empty(), "{}: empty day", m.name());
        }
    }
}
