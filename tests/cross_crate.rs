//! Cross-crate consistency tests: components agree where their contracts
//! overlap (analysis pipelines, similarity measures, graph semantics).

use tl_corpus::{dated_sentences, generate, SynthConfig};
use tl_graph::{pagerank, DiGraph, PageRankConfig};
use tl_ir::{Bm25Params, Bm25Scorer, InvertedIndex};
use tl_nlp::{AnalysisOptions, Analyzer};
use tl_rouge::RougeScorer;
use tl_temporal::TemporalTagger;

#[test]
fn index_rank_agrees_with_scorer_on_synthetic_corpus() {
    let ds = generate(&SynthConfig::tiny());
    let texts: Vec<&String> = ds.topics[0]
        .articles
        .iter()
        .flat_map(|a| a.sentences.iter())
        .take(200)
        .collect();
    let mut analyzer = Analyzer::new(AnalysisOptions::retrieval());
    let docs: Vec<Vec<u32>> = texts.iter().map(|t| analyzer.analyze(t)).collect();
    let mut index = InvertedIndex::new();
    for d in &docs {
        index.add_document(d);
    }
    let scorer = Bm25Scorer::fit(docs.iter().map(Vec::as_slice), Bm25Params::default());
    let query = analyzer.analyze_frozen(&ds.topics[0].query);
    for (doc, score) in index
        .rank(&query, Bm25Params::default())
        .into_iter()
        .take(20)
    {
        let expected = scorer.score(&query, &docs[doc]);
        assert!(
            (score - expected).abs() < 1e-9,
            "doc {doc}: index {score} vs scorer {expected}"
        );
    }
}

#[test]
fn tagger_findings_match_preprocess_pairings() {
    // Every day-granular tag the tagger produces must appear as a
    // mention pairing in dated_sentences, and vice versa.
    let ds = generate(&SynthConfig::tiny());
    let topic = &ds.topics[0];
    let corpus = dated_sentences(&topic.articles, None);
    let tagger = TemporalTagger::new();
    for article in topic.articles.iter().take(10) {
        for (si, text) in article.sentences.iter().enumerate() {
            let tags: Vec<_> = tagger
                .tag(text, article.pub_date)
                .into_iter()
                .filter(|t| t.granularity == tl_temporal::tagger::Granularity::Day)
                .collect();
            let mentions: Vec<_> = corpus
                .iter()
                .filter(|s| s.article == article.id && s.sentence_index == si && s.from_mention)
                .collect();
            for tag in &tags {
                assert!(
                    mentions.iter().any(|m| m.date == tag.date) || tag.date == article.pub_date,
                    "tag {tag:?} missing from preprocess output"
                );
            }
        }
    }
}

#[test]
fn rouge_identity_on_generated_ground_truth() {
    // A ground-truth timeline scored against itself is perfect — catches
    // analysis/tokenization mismatches between corpus text and the scorer.
    let ds = generate(&SynthConfig::tiny());
    let gt = &ds.topics[0].timelines[0];
    let mut rouge = tl_rouge::TimelineRouge::new();
    for mode in [
        tl_rouge::TimelineRougeMode::Concat,
        tl_rouge::TimelineRougeMode::Agreement,
        tl_rouge::TimelineRougeMode::AlignMto1,
    ] {
        let s = rouge.rouge_n(1, mode, gt.as_slice(), gt.as_slice());
        assert!((s.f1 - 1.0).abs() < 1e-9, "{mode:?}");
    }
}

#[test]
fn date_graph_pagerank_mass_is_conserved() {
    // Building the WILSON date graph from a real synthetic corpus and
    // running PageRank must yield a probability distribution.
    let ds = generate(&SynthConfig::tiny());
    let topic = &ds.topics[0];
    let corpus = dated_sentences(&topic.articles, None);
    let graph = tl_wilson::DateGraph::build(&corpus, &topic.query);
    assert!(graph.num_dates() > 0);
    assert!(
        graph.num_edges() > 0,
        "synthetic corpus must carry references"
    );
    let g = graph.to_digraph(tl_wilson::EdgeWeight::W3);
    let r = pagerank(&g, &PageRankConfig::default());
    let sum: f64 = r.iter().sum();
    assert!((sum - 1.0).abs() < 1e-6);
}

#[test]
fn stemming_is_consistent_between_rouge_and_nlp() {
    let mut scorer = RougeScorer::new();
    let a = scorer.tokens("negotiations");
    let b = scorer.tokens("negotiation");
    assert_eq!(a, b, "rouge scorer must stem consistently");
    assert_eq!(
        tl_nlp::porter_stem("negotiations"),
        tl_nlp::porter_stem("negotiation")
    );
}

#[test]
fn digraph_pagerank_matches_manual_two_node_solution() {
    // Shared sanity anchor between tl-graph and consumers: the analytic
    // two-node chain.
    let mut g = DiGraph::new(2);
    g.add_edge(0, 1, 3.0); // weight scale must not matter
    let r = pagerank(&g, &PageRankConfig::default());
    assert!((r[0] - 0.350877).abs() < 1e-3);
    assert!((r[1] - 0.649123).abs() < 1e-3);
}

#[test]
fn embedder_separates_synthetic_topics() {
    // Sentences from different synthetic topics must be less similar than
    // sentences within a topic (what autocompression relies on).
    let ds = generate(&SynthConfig::tiny());
    // Sample broadly: individual sentences share little (compound words are
    // near-unique), but topic vocabulary separates in aggregate.
    let a: Vec<&String> = ds.topics[0]
        .articles
        .iter()
        .flat_map(|ar| ar.sentences.iter())
        .step_by(7)
        .take(40)
        .collect();
    let b: Vec<&String> = ds.topics[1]
        .articles
        .iter()
        .flat_map(|ar| ar.sentences.iter())
        .step_by(7)
        .take(40)
        .collect();
    let mut embedder = tl_embed::SentenceEmbedder::new(256);
    let ea: Vec<Vec<f64>> = a.iter().map(|t| embedder.embed(t)).collect();
    let eb: Vec<Vec<f64>> = b.iter().map(|t| embedder.embed(t)).collect();
    let avg = |xs: &[Vec<f64>], ys: &[Vec<f64>], skip_same: bool| {
        let mut s = 0.0;
        let mut k = 0.0;
        for (i, x) in xs.iter().enumerate() {
            for (j, y) in ys.iter().enumerate() {
                if skip_same && i == j {
                    continue;
                }
                s += tl_embed::embedding::cosine(x, y);
                k += 1.0;
            }
        }
        s / k
    };
    let within = avg(&ea, &ea, true);
    let across = avg(&ea, &eb, false);
    assert!(
        within > across,
        "within-topic {within:.3} <= across-topic {across:.3}"
    );
}
