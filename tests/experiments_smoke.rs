//! Smoke tests of the experiment machinery at reduced scale: every
//! table/figure pathway must run end-to-end and reproduce the paper's
//! directional claims on the tiny profile.

use tl_baselines::TilseBaseline;
use tl_corpus::{dated_sentences, generate, SynthConfig, TimelineGenerator};
use tl_eval::judge::{run_panel, JudgePanel, JudgedEntry};
use tl_eval::oracle::rouge_oracle_timeline;
use tl_eval::protocol::evaluate_method;
use tl_rouge::{approximate_randomization, TimelineRouge, TimelineRougeMode};
use tl_wilson::autocompress::{predict_num_dates, AutoCompressConfig};
use tl_wilson::{EdgeWeight, Wilson, WilsonConfig};

#[test]
fn table2_pathway_all_edge_weights_comparable() {
    let ds = generate(&SynthConfig::tiny());
    let mut f1s = Vec::new();
    for w in EdgeWeight::all() {
        let m = evaluate_method(&ds, &Wilson::new(WilsonConfig::tran().with_edge_weight(w)));
        assert!(m.date_f1() > 0.0, "{}", w.label());
        f1s.push(m.date_f1());
    }
    // The paper's claim: all four weights land in the same ballpark.
    let max = f1s.iter().cloned().fold(f64::MIN, f64::max);
    let min = f1s.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max - min < 0.35, "edge weights diverge too much: {f1s:?}");
}

#[test]
fn table3_pathway_uniform_covers_but_scores_low() {
    let ds = generate(&SynthConfig::tiny());
    let uniform = evaluate_method(&ds, &Wilson::new(WilsonConfig::uniform()));
    let full = evaluate_method(&ds, &Wilson::new(WilsonConfig::default()));
    // Uniform has the worse date F1 (Table 3's consistent finding).
    assert!(full.date_f1() > uniform.date_f1());
    // Both cover some ground truth within ±3 days.
    assert!(uniform.date_coverage3() > 0.0);
    assert!(full.date_coverage3() > 0.0);
}

#[test]
fn table7_pathway_significance_runs() {
    let ds = generate(&SynthConfig::tiny());
    let wilson = evaluate_method(&ds, &Wilson::new(WilsonConfig::default()));
    let tilse = evaluate_method(&ds, &TilseBaseline::tls_constraints());
    let r = approximate_randomization(
        &wilson.series(|u| u.concat_r2),
        &tilse.series(|u| u.concat_r2),
        200,
        7,
    );
    assert!(r.p_value > 0.0 && r.p_value <= 1.0);
}

#[test]
fn table8_pathway_oracle_dominates_unsupervised() {
    let ds = generate(&SynthConfig::tiny());
    let topic = &ds.topics[0];
    let corpus = dated_sentences(&topic.articles, None);
    let gt = &topic.timelines[0];
    let ref_text: String = gt
        .entries
        .iter()
        .flat_map(|(_, s)| s.iter().cloned())
        .collect::<Vec<_>>()
        .join(" ");
    let (t, n) = (gt.num_dates(), gt.target_sentences_per_date());
    let oracle = rouge_oracle_timeline(&corpus, &ref_text, t, n);
    let wilson = Wilson::new(WilsonConfig::default()).generate(&corpus, &topic.query, t, n);
    let mut rouge = TimelineRouge::new();
    let o = rouge
        .rouge_n(
            1,
            TimelineRougeMode::Concat,
            oracle.as_slice(),
            gt.as_slice(),
        )
        .f1;
    let w = rouge
        .rouge_n(
            1,
            TimelineRougeMode::Concat,
            wilson.as_slice(),
            gt.as_slice(),
        )
        .f1;
    assert!(o >= w, "oracle {o} < wilson {w}");
    assert!(o > 0.3, "oracle too weak: {o}");
}

#[test]
fn table9_pathway_panel_ranks_three_systems() {
    let ds = generate(&SynthConfig::tiny());
    let topic = &ds.topics[0];
    let corpus = dated_sentences(&topic.articles, None);
    let gt = &topic.timelines[0];
    let (t, n) = (gt.num_dates(), gt.target_sentences_per_date());
    let outputs = [
        (
            "ASMDS",
            TilseBaseline::asmds().generate(&corpus, &topic.query, t, n),
        ),
        (
            "TLS",
            TilseBaseline::tls_constraints().generate(&corpus, &topic.query, t, n),
        ),
        (
            "WILSON",
            Wilson::new(WilsonConfig::default()).generate(&corpus, &topic.query, t, n),
        ),
    ];
    let samples = vec![(
        outputs
            .iter()
            .map(|(name, tl)| JudgedEntry {
                name,
                timeline: tl.as_slice(),
            })
            .collect::<Vec<_>>(),
        gt.as_slice(),
    )];
    let outcomes = run_panel(&samples, &JudgePanel::default());
    assert_eq!(outcomes.len(), 3);
    let total_firsts: usize = outcomes.iter().map(|o| o.rank_counts[0]).sum();
    assert_eq!(total_firsts, 1, "exactly one winner per sample");
}

#[test]
fn fig6_pathway_prediction_in_sane_range() {
    let ds = generate(&SynthConfig::tiny());
    let topic = &ds.topics[0];
    let corpus = dated_sentences(&topic.articles, None);
    let k = predict_num_dates(&corpus, &AutoCompressConfig::default());
    let truth = topic.timelines[0].num_dates();
    // Within a generous factor — the tiny profile is noisy; the full bins
    // measure MAPE properly.
    assert!(k >= 1);
    assert!(
        (k as f64) < truth as f64 * 10.0,
        "predicted {k} vs truth {truth}"
    );
}

#[test]
fn fig2_pathway_quadratic_vs_linear_shape() {
    // Two corpus sizes; the TILSE/WILSON time ratio must grow with size.
    let small = generate(&SynthConfig::tiny().with_scale(1.0));
    let large = generate(&SynthConfig::tiny().with_scale(3.0));
    let ratio = |ds: &tl_corpus::Dataset| {
        let topic = &ds.topics[0];
        let corpus = dated_sentences(&topic.articles, None);
        let start = std::time::Instant::now();
        TilseBaseline::tls_constraints().generate(&corpus, &topic.query, 5, 1);
        let tilse = start.elapsed().as_secs_f64();
        let start = std::time::Instant::now();
        Wilson::new(WilsonConfig::default()).generate(&corpus, &topic.query, 5, 1);
        let wilson = start.elapsed().as_secs_f64();
        tilse / wilson.max(1e-9)
    };
    let r_small = ratio(&small);
    let r_large = ratio(&large);
    // Allow generous noise; the full fig2 binary fits real exponents.
    assert!(
        r_large > r_small * 0.8,
        "speed gap did not grow: {r_small:.2} -> {r_large:.2}"
    );
}
